package rewriting

import (
	"testing"

	"bdi/internal/core"
	"bdi/internal/rdf"
	"bdi/internal/relational"
	"bdi/internal/wrapper"
)

// runningExampleOMQ is the paper's exemplary query (Code 8): for each
// applicationId, fetch its lagRatio instances.
func runningExampleOMQ() *OMQ {
	return NewOMQ(
		[]rdf.IRI{core.SupApplicationID, core.SupLagRatio},
		rdf.T(core.SupSoftwareApplication, core.GHasFeature, core.SupApplicationID),
		rdf.T(core.SupSoftwareApplication, core.SupHasMonitor, core.SupMonitor),
		rdf.T(core.SupMonitor, core.SupGeneratesQoS, core.SupInfoMonitor),
		rdf.T(core.SupInfoMonitor, core.GHasFeature, core.SupLagRatio),
	)
}

const runningExampleSPARQL = `
PREFIX G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/>
PREFIX sup: <http://www.essi.upc.edu/~snadal/BDIOntology/SUPERSEDE/>
PREFIX sc: <http://schema.org/>
SELECT ?x ?y
FROM <http://www.essi.upc.edu/~snadal/BDIOntology/Global>
WHERE {
  VALUES (?x ?y) { (sup:applicationId sup:lagRatio) }
  sc:SoftwareApplication G:hasFeature sup:applicationId .
  sc:SoftwareApplication sup:hasMonitor sup:Monitor .
  sup:Monitor sup:generatesQoS sup:InfoMonitor .
  sup:InfoMonitor G:hasFeature sup:lagRatio
}
`

// supersedeRegistry builds the wrapper registry with the Table 1 data.
func supersedeRegistry(withEvolution bool) *wrapper.Registry {
	reg := wrapper.NewRegistry()
	reg.Register(wrapper.NewMemory("w1", "D1",
		relational.NewSchema([]string{"VoDmonitorId"}, []string{"lagRatio"}),
		[]relational.Tuple{
			{"VoDmonitorId": 12, "lagRatio": 0.75},
			{"VoDmonitorId": 12, "lagRatio": 0.90},
			{"VoDmonitorId": 18, "lagRatio": 0.1},
		}))
	reg.Register(wrapper.NewMemory("w2", "D2",
		relational.NewSchema([]string{"FGId"}, []string{"tweet"}),
		[]relational.Tuple{
			{"FGId": 77, "tweet": "I continuously see the loading symbol"},
			{"FGId": 45, "tweet": "Your video player is great!"},
		}))
	reg.Register(wrapper.NewMemory("w3", "D3",
		relational.NewSchema([]string{"TargetApp", "MonitorId", "FeedbackId"}, nil),
		[]relational.Tuple{
			{"TargetApp": 1, "MonitorId": 12, "FeedbackId": 77},
			{"TargetApp": 2, "MonitorId": 18, "FeedbackId": 45},
		}))
	if withEvolution {
		reg.Register(wrapper.NewMemory("w4", "D1",
			relational.NewSchema([]string{"VoDmonitorId"}, []string{"bufferingRatio"}),
			[]relational.Tuple{
				{"VoDmonitorId": 18, "bufferingRatio": 0.35},
			}))
	}
	return reg
}

func buildOntology(t *testing.T, withEvolution bool) *core.Ontology {
	t.Helper()
	o, err := core.BuildSupersedeOntology(withEvolution)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestFromSPARQLRunningExample(t *testing.T) {
	omq, err := ParseOMQ(runningExampleSPARQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(omq.Pi) != 2 {
		t.Errorf("π = %v", omq.Pi)
	}
	if omq.Phi.Len() != 4 {
		t.Errorf("φ size = %d", omq.Phi.Len())
	}
	if !omq.ProjectsElement(core.SupLagRatio) {
		t.Error("lagRatio should be projected")
	}
}

func TestFromSPARQLRejectsMalformedOMQs(t *testing.T) {
	cases := []string{
		// Projected variable not bound in VALUES.
		`PREFIX sup: <http://www.essi.upc.edu/~snadal/BDIOntology/SUPERSEDE/>
		 SELECT ?x WHERE { sup:A sup:p sup:B }`,
		// Variable inside the graph pattern.
		`PREFIX sup: <http://www.essi.upc.edu/~snadal/BDIOntology/SUPERSEDE/>
		 SELECT ?x WHERE { VALUES (?x) { (sup:a) } ?s sup:p sup:B }`,
		// Disconnected pattern.
		`PREFIX sup: <http://www.essi.upc.edu/~snadal/BDIOntology/SUPERSEDE/>
		 SELECT ?x WHERE { VALUES (?x) { (sup:a) } sup:A sup:p sup:B . sup:C sup:q sup:D }`,
	}
	for i, c := range cases {
		if _, err := ParseOMQ(c); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestWellFormedQueryAcceptsRunningExample(t *testing.T) {
	o := buildOntology(t, false)
	wf, err := WellFormedQuery(o, runningExampleOMQ())
	if err != nil {
		t.Fatal(err)
	}
	if !IsWellFormed(o, wf) {
		t.Error("query should be well-formed")
	}
	if len(wf.Pi) != 2 {
		t.Errorf("π = %v", wf.Pi)
	}
}

func TestWellFormedQueryRewritesConceptProjections(t *testing.T) {
	// Code 9: projecting concepts (SoftwareApplication, Monitor,
	// FeedbackGathering) is not well-formed; Algorithm 2 rewrites it to
	// project their IDs (Code 10).
	o := buildOntology(t, false)
	omq := NewOMQ(
		[]rdf.IRI{core.SupSoftwareApplication, core.SupMonitor, core.SupFeedbackGathering},
		rdf.T(core.SupSoftwareApplication, core.SupHasMonitor, core.SupMonitor),
		rdf.T(core.SupSoftwareApplication, core.SupHasFGTool, core.SupFeedbackGathering),
	)
	if IsWellFormed(o, omq) {
		t.Fatal("query projecting concepts must not be well-formed")
	}
	wf, err := WellFormedQuery(o, omq)
	if err != nil {
		t.Fatal(err)
	}
	want := map[rdf.IRI]bool{core.SupApplicationID: true, core.SupMonitorID: true, core.SupFeedbackGatheringID: true}
	for _, p := range wf.Pi {
		if !want[p] {
			t.Errorf("unexpected projection %v", p)
		}
	}
	// The pattern must now contain the hasFeature edges added by the rewrite.
	if !wf.Phi.Contains(rdf.T(core.SupMonitor, core.GHasFeature, core.SupMonitorID)) {
		t.Error("hasFeature edge for monitorId missing")
	}
	if !IsWellFormed(o, wf) {
		t.Error("rewritten query should be well-formed")
	}
}

func TestWellFormedQueryErrors(t *testing.T) {
	o := buildOntology(t, false)
	// Cyclic pattern.
	cyclic := NewOMQ(
		[]rdf.IRI{core.SupApplicationID},
		rdf.T(core.SupSoftwareApplication, core.SupHasMonitor, core.SupMonitor),
		rdf.T(core.SupMonitor, core.SupHasMonitor, core.SupSoftwareApplication),
	)
	if _, err := WellFormedQuery(o, cyclic); err == nil {
		t.Error("cyclic pattern must be rejected")
	}
	// Concept without an identifier (InfoMonitor has no ID feature).
	noID := NewOMQ(
		[]rdf.IRI{core.SupInfoMonitor},
		rdf.T(core.SupMonitor, core.SupGeneratesQoS, core.SupInfoMonitor),
	)
	if _, err := WellFormedQuery(o, noID); err == nil {
		t.Error("projecting a concept without an ID must be rejected")
	}
	// Projected element unknown to G.
	unknown := NewOMQ(
		[]rdf.IRI{rdf.IRI("http://ex/notInG")},
		rdf.T(core.SupSoftwareApplication, core.SupHasMonitor, core.SupMonitor),
	)
	if _, err := WellFormedQuery(o, unknown); err == nil {
		t.Error("unknown projected element must be rejected")
	}
	// Feature projected but absent from the pattern.
	absent := NewOMQ(
		[]rdf.IRI{core.SupLagRatio},
		rdf.T(core.SupSoftwareApplication, core.SupHasMonitor, core.SupMonitor),
	)
	if _, err := WellFormedQuery(o, absent); err == nil {
		t.Error("feature not in the pattern must be rejected")
	}
}

func TestQueryExpansionAddsIDs(t *testing.T) {
	o := buildOntology(t, false)
	wf, err := WellFormedQuery(o, runningExampleOMQ())
	if err != nil {
		t.Fatal(err)
	}
	eq, err := QueryExpansion(o, wf)
	if err != nil {
		t.Fatal(err)
	}
	// Concepts in traversal order: SoftwareApplication, Monitor, InfoMonitor.
	if len(eq.Concepts) != 3 {
		t.Fatalf("concepts = %v", eq.Concepts)
	}
	if eq.Concepts[0] != core.SupSoftwareApplication || eq.Concepts[2] != core.SupInfoMonitor {
		t.Errorf("concept order = %v", eq.Concepts)
	}
	// The expansion must add sup:monitorId (the ID of Monitor) to φ.
	if !eq.Query.Phi.Contains(rdf.T(core.SupMonitor, core.GHasFeature, core.SupMonitorID)) {
		t.Error("expanded query must include the Monitor ID")
	}
	// And it must not touch π.
	if len(eq.Query.Pi) != len(wf.Pi) {
		t.Error("expansion must not change the projections")
	}
}

func TestIntraConceptGenerationRunningExample(t *testing.T) {
	o := buildOntology(t, false)
	wf, _ := WellFormedQuery(o, runningExampleOMQ())
	eq, _ := QueryExpansion(o, wf)
	partials, err := IntraConceptGeneration(o, eq)
	if err != nil {
		t.Fatal(err)
	}
	if len(partials) != 3 {
		t.Fatalf("partial walk groups = %d", len(partials))
	}
	byConcept := map[rdf.IRI][]*relational.Walk{}
	for _, pw := range partials {
		byConcept[pw.Concept] = pw.Walks
	}
	// SoftwareApplication -> only w3.
	if walks := byConcept[core.SupSoftwareApplication]; len(walks) != 1 || walks[0].WrapperNames()[0] != "w3" {
		t.Errorf("SoftwareApplication walks = %v", walks)
	}
	// Monitor -> w1 and w3 (as in the paper's phase #2 example output).
	if walks := byConcept[core.SupMonitor]; len(walks) != 2 {
		t.Errorf("Monitor walks = %v", walks)
	}
	// InfoMonitor -> only w1.
	if walks := byConcept[core.SupInfoMonitor]; len(walks) != 1 || walks[0].WrapperNames()[0] != "w1" {
		t.Errorf("InfoMonitor walks = %v", walks)
	}
}

func TestIntraConceptPrunesPartialProviders(t *testing.T) {
	// Register a wrapper w5 for a new source D5 that only provides monitorId
	// but not lagRatio; for the InfoMonitor concept it must not appear, and
	// for a query requesting both features of InfoMonitor... (here: it simply
	// must not show up among the providers of lagRatio).
	o := buildOntology(t, false)
	g := rdf.NewGraph("")
	g.Add(
		rdf.T(core.SupMonitor, core.GHasFeature, core.SupMonitorID),
	)
	_, err := o.NewRelease(core.Release{
		Wrapper:  core.WrapperSpec{Name: "w5", Source: "D5", IDAttributes: []string{"mid"}},
		Subgraph: g,
		F:        map[string]rdf.IRI{"mid": core.SupMonitorID},
	})
	if err != nil {
		t.Fatal(err)
	}
	wf, _ := WellFormedQuery(o, runningExampleOMQ())
	eq, _ := QueryExpansion(o, wf)
	partials, err := IntraConceptGeneration(o, eq)
	if err != nil {
		t.Fatal(err)
	}
	for _, pw := range partials {
		if pw.Concept == core.SupMonitor {
			if len(pw.Walks) != 3 {
				t.Errorf("Monitor should now have 3 providers (w1, w3, w5): %v", pw.Walks)
			}
		}
		if pw.Concept == core.SupInfoMonitor {
			for _, w := range pw.Walks {
				if w.HasWrapper("w5") {
					t.Error("w5 does not provide lagRatio and must be pruned for InfoMonitor")
				}
			}
		}
	}
}

func TestRewriteRunningExampleBeforeEvolution(t *testing.T) {
	o := buildOntology(t, false)
	r := NewRewriter(o)
	res, err := r.Rewrite(runningExampleOMQ())
	if err != nil {
		t.Fatal(err)
	}
	if res.UCQ.Len() != 1 {
		t.Fatalf("expected a single walk, got %d:\n%s", res.UCQ.Len(), res.UCQ)
	}
	sig := res.UCQ.Signatures()[0]
	if sig != "w1|w3" {
		t.Errorf("walk signature = %q, want w1|w3", sig)
	}
	walk := res.UCQ.Walks[0]
	if len(walk.Joins) != 1 {
		t.Fatalf("joins = %v", walk.Joins)
	}
	j := walk.Joins[0]
	if !(j.LeftAttr == "D3/MonitorId" && j.RightAttr == "D1/VoDmonitorId") &&
		!(j.LeftAttr == "D1/VoDmonitorId" && j.RightAttr == "D3/MonitorId") {
		t.Errorf("join condition = %v", j)
	}
}

func TestRewriteRunningExampleAfterEvolution(t *testing.T) {
	// After registering w4 (lagRatio renamed to bufferingRatio), the same OMQ
	// must produce the union of two walks: (w1 ⋈ w3) ∪ (w4 ⋈ w3), as in §2.1.
	o := buildOntology(t, true)
	r := NewRewriter(o)
	res, err := r.Rewrite(runningExampleOMQ())
	if err != nil {
		t.Fatal(err)
	}
	sigs := res.UCQ.Signatures()
	if len(sigs) != 2 || sigs[0] != "w1|w3" || sigs[1] != "w3|w4" {
		t.Fatalf("signatures = %v, want [w1|w3 w3|w4]", sigs)
	}
}

func TestRewriteSPARQLEndToEnd(t *testing.T) {
	o := buildOntology(t, false)
	r := NewRewriter(o)
	res, err := r.RewriteSPARQL(runningExampleSPARQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.UCQ.Len() != 1 {
		t.Errorf("walks = %d", res.UCQ.Len())
	}
}

func TestAnswerProducesTable2(t *testing.T) {
	o := buildOntology(t, false)
	r := NewRewriter(o)
	resolver := wrapper.NewQualifiedResolver(supersedeRegistry(false))
	answer, _, err := r.Answer(runningExampleOMQ(), resolver)
	if err != nil {
		t.Fatal(err)
	}
	if answer.Cardinality() != 3 {
		t.Fatalf("answer cardinality = %d, want 3 (Table 2)\n%s", answer.Cardinality(), answer)
	}
	if !answer.Schema.Has("applicationId") || !answer.Schema.Has("lagRatio") {
		t.Errorf("answer schema = %v", answer.Schema)
	}
	// Check the exact rows of Table 2: (1, 0.75), (1, 0.90), (2, 0.1).
	countApp1, countApp2 := 0, 0
	for _, tup := range answer.Tuples {
		switch {
		case relational.ValuesEqual(tup["applicationId"], 1):
			countApp1++
		case relational.ValuesEqual(tup["applicationId"], 2):
			countApp2++
		}
	}
	if countApp1 != 2 || countApp2 != 1 {
		t.Errorf("per-application counts = app1:%d app2:%d\n%s", countApp1, countApp2, answer)
	}
}

func TestAnswerAfterEvolutionUnionsBothVersions(t *testing.T) {
	o := buildOntology(t, true)
	r := NewRewriter(o)
	resolver := wrapper.NewQualifiedResolver(supersedeRegistry(true))
	answer, res, err := r.Answer(runningExampleOMQ(), resolver)
	if err != nil {
		t.Fatal(err)
	}
	if res.UCQ.Len() != 2 {
		t.Fatalf("expected 2 walks after evolution, got %d", res.UCQ.Len())
	}
	// 3 tuples from w1 ⋈ w3 plus 1 tuple from w4 ⋈ w3 (monitor 18 -> app 2).
	if answer.Cardinality() != 4 {
		t.Fatalf("answer cardinality = %d, want 4\n%s", answer.Cardinality(), answer)
	}
	// Both versions contribute to the same lagRatio column.
	if !answer.Schema.Has("lagRatio") || answer.Schema.Has("bufferingRatio") {
		t.Errorf("evolved attribute should be unified under lagRatio: %v", answer.Schema)
	}
}

func TestAnswerSPARQL(t *testing.T) {
	o := buildOntology(t, false)
	r := NewRewriter(o)
	resolver := wrapper.NewQualifiedResolver(supersedeRegistry(false))
	answer, _, err := r.AnswerSPARQL(runningExampleSPARQL, resolver)
	if err != nil {
		t.Fatal(err)
	}
	if answer.Cardinality() != 3 {
		t.Errorf("cardinality = %d", answer.Cardinality())
	}
}

func TestCoverageAndMinimality(t *testing.T) {
	o := buildOntology(t, false)
	wf, _ := WellFormedQuery(o, runningExampleOMQ())

	covering := relational.NewWalk("w1", "D1", "D1/lagRatio")
	covering.AddWrapper(relational.WrapperRef{Wrapper: "w3", Source: "D3", Projection: []string{"D3/TargetApp"}})
	if !Coverage(o, covering, wf.Phi) {
		t.Error("w1+w3 should cover the running example query")
	}
	if !Minimal(o, covering, wf.Phi) {
		t.Error("w1+w3 should be minimal")
	}

	alone := relational.NewWalk("w1", "D1", "D1/lagRatio")
	if Coverage(o, alone, wf.Phi) {
		t.Error("w1 alone must not cover the query (it lacks applicationId)")
	}

	redundant := covering.Clone()
	redundant.AddWrapper(relational.WrapperRef{Wrapper: "w2", Source: "D2", Projection: []string{"D2/tweet"}})
	if Minimal(o, redundant, wf.Phi) {
		t.Error("adding w2 makes the walk non-minimal")
	}
	if !Coverage(o, redundant, wf.Phi) {
		t.Error("the redundant walk still covers the query")
	}
}

func TestRewriteErrorsWhenNoWrapperProvidesAFeature(t *testing.T) {
	// Query asking for UserFeedback description joined with applicationId:
	// w2 provides description, w3 provides applicationId and the
	// FeedbackGathering link, so this works. But a fresh ontology without w2
	// must fail.
	o := core.NewOntology()
	if err := core.BuildSupersedeGlobalGraph(o); err != nil {
		t.Fatal(err)
	}
	if _, err := o.NewRelease(core.SupersedeReleaseW3()); err != nil {
		t.Fatal(err)
	}
	omq := NewOMQ(
		[]rdf.IRI{core.SupApplicationID, core.SupDescription},
		rdf.T(core.SupSoftwareApplication, core.GHasFeature, core.SupApplicationID),
		rdf.T(core.SupSoftwareApplication, core.SupHasFGTool, core.SupFeedbackGathering),
		rdf.T(core.SupFeedbackGathering, core.SupGeneratesUF, core.SupUserFeedback),
		rdf.T(core.SupUserFeedback, core.GHasFeature, core.SupDescription),
	)
	r := NewRewriter(o)
	if _, err := r.Rewrite(omq); err == nil {
		t.Error("rewriting must fail when no wrapper provides sup:description")
	}
}

func TestRewriteFeedbackPath(t *testing.T) {
	// The feedback path: for each applicationId fetch the feedback
	// descriptions (w2 ⋈ w3 via feedbackGatheringId).
	o := buildOntology(t, false)
	omq := NewOMQ(
		[]rdf.IRI{core.SupApplicationID, core.SupDescription},
		rdf.T(core.SupSoftwareApplication, core.GHasFeature, core.SupApplicationID),
		rdf.T(core.SupSoftwareApplication, core.SupHasFGTool, core.SupFeedbackGathering),
		rdf.T(core.SupFeedbackGathering, core.SupGeneratesUF, core.SupUserFeedback),
		rdf.T(core.SupUserFeedback, core.GHasFeature, core.SupDescription),
	)
	r := NewRewriter(o)
	res, err := r.Rewrite(omq)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UCQ.Signatures()) != 1 || res.UCQ.Signatures()[0] != "w2|w3" {
		t.Fatalf("signatures = %v", res.UCQ.Signatures())
	}
	resolver := wrapper.NewQualifiedResolver(supersedeRegistry(false))
	answer, err := r.ExecuteResult(res, resolver)
	if err != nil {
		t.Fatal(err)
	}
	if answer.Cardinality() != 2 {
		t.Errorf("answer cardinality = %d\n%s", answer.Cardinality(), answer)
	}
}

func TestSingleConceptQuery(t *testing.T) {
	// Querying a single concept's features requires no inter-concept joins.
	o := buildOntology(t, false)
	omq := NewOMQ(
		[]rdf.IRI{core.SupMonitorID},
		rdf.T(core.SupMonitor, core.GHasFeature, core.SupMonitorID),
	)
	r := NewRewriter(o)
	res, err := r.Rewrite(omq)
	if err != nil {
		t.Fatal(err)
	}
	// w1 and w3 both provide monitorId; each is covering and minimal alone.
	if res.UCQ.Len() != 2 {
		t.Errorf("walks = %d (%v)", res.UCQ.Len(), res.UCQ.Signatures())
	}
}
