package rewriting

import (
	"bdi/internal/core"
	"bdi/internal/rdf"
)

// queryFootprint derives the invalidation footprint of an expanded OMQ: the
// concepts the query navigates and the features it mentions (projected
// features plus every G:hasFeature object of the expanded pattern,
// including the identifier features added by Algorithm 3). Every ontology
// lookup Algorithms 4-5 and the coverage check issue is keyed on one of
// these elements, so a release whose delta is disjoint from the footprint
// cannot change the rewriting result (edge lookups need no separate
// tracking: a delta providing an edge always lists both endpoint concepts).
func queryFootprint(expanded *ExpandedQuery) core.Footprint {
	features := append([]rdf.IRI(nil), expanded.Query.Pi...)
	for _, t := range expanded.Query.Phi.Triples {
		if p, ok := t.Predicate.(rdf.IRI); ok && p == core.GHasFeature {
			if f, ok := t.Object.(rdf.IRI); ok {
				features = append(features, f)
			}
		}
	}
	return core.NewFootprint(expanded.Concepts, features)
}

// unitFootprint is the invalidation footprint of one intra-concept unit:
// the concept and its requested features.
func unitFootprint(concept rdf.IRI, features []rdf.IRI) core.Footprint {
	return core.NewFootprint([]rdf.IRI{concept}, features)
}
