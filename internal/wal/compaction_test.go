package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bdi/internal/core"
	"bdi/internal/rdf"
	"bdi/internal/store"
)

// The dictionary-compaction parity suite: workloads interleave removals
// (which orphan TermIDs — the dictionary is append-only) with compacting
// checkpoints, and every rebuild path from the same data dir — recovery and
// replica-style checkpoint bootstrap — must produce byte-identical stores
// under the densely remapped IDs, including when the newest (compacted)
// checkpoint is corrupted away or the WAL is killed at arbitrary offsets.

// quadStrings renders an ontology's quads for order-sensitive comparison.
func quadStrings(o *core.Ontology) []string {
	quads := o.Store().Quads()
	out := make([]string, len(quads))
	for i, q := range quads {
		out[i] = q.String()
	}
	return out
}

// assertOntologyByteParity proves two independently rebuilt ontologies agree
// exactly: generation, quads, the full dictionary table (hence TermIDs),
// MatchIDs output and the delta log.
func assertOntologyByteParity(t *testing.T, a, b *core.Ontology, label string) {
	t.Helper()
	asn, bsn := a.Store().Snapshot(), b.Store().Snapshot()
	if asn.Generation() != bsn.Generation() {
		t.Fatalf("%s: generations %d vs %d", label, asn.Generation(), bsn.Generation())
	}
	aq, bq := asn.Quads(), bsn.Quads()
	if len(aq) != len(bq) {
		t.Fatalf("%s: %d quads vs %d", label, len(aq), len(bq))
	}
	for i := range aq {
		if aq[i].String() != bq[i].String() {
			t.Fatalf("%s: quad %d = %s vs %s", label, i, aq[i], bq[i])
		}
	}
	at, bt := asn.Dict().Terms(), bsn.Dict().Terms()
	if len(at) != len(bt) {
		t.Fatalf("%s: dict has %d terms vs %d", label, len(at), len(bt))
	}
	for i := range at {
		if !at[i].Equal(bt[i]) {
			t.Fatalf("%s: dict term %d = %v vs %v", label, i+1, at[i], bt[i])
		}
	}
	probes := []store.Pattern{
		{},
		store.WildcardGraph(nil, rdf.RDFType, nil),
		store.InGraph(core.SourceGraphName, nil, nil, nil),
		store.WildcardGraph(nil, rdf.OWLSameAs, nil),
	}
	for pi, p := range probes {
		am, bm := asn.MatchWithIDs(p), bsn.MatchWithIDs(p)
		if len(am) != len(bm) {
			t.Fatalf("%s: probe %d returned %d vs %d matches", label, pi, len(am), len(bm))
		}
		for i := range am {
			if am[i].ID != bm[i].ID {
				t.Fatalf("%s: probe %d match %d ID = %+v vs %+v", label, pi, i, am[i].ID, bm[i].ID)
			}
		}
	}
	if !reflect.DeepEqual(a.DeltaLog(), b.DeltaLog()) {
		t.Fatalf("%s: delta logs differ:\n%+v\n%+v", label, a.DeltaLog(), b.DeltaLog())
	}
}

// bootstrapFromDir rebuilds an ontology the way a replica does: restore the
// newest checkpoint that decodes (skipping corrupt ones, like recovery), then
// replay the retained WAL through the public shipping API — DecodeFrame and
// Record.Apply under the replica's generation and span guards. A torn tail
// ends replay exactly where recovery stops.
func bootstrapFromDir(t *testing.T, dir string) *core.Ontology {
	t.Helper()
	ckpts, err := listSeqFiles(dir, checkpointPrefix, checkpointSuffix)
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("listing checkpoints: %v (%d found)", err, len(ckpts))
	}
	var o *core.Ontology
	for i := len(ckpts) - 1; i >= 0 && o == nil; i-- {
		data, rerr := os.ReadFile(ckpts[i].path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if restored, rerr := RestoreCheckpoint(data); rerr == nil {
			o = restored
		}
	}
	if o == nil {
		t.Fatal("no checkpoint in the dir restores")
	}
	spanGen := o.Store().Generation()
	segs, err := listSeqFiles(dir, segmentPrefix, segmentSuffix)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range segs {
		data, rerr := os.ReadFile(seg.path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		off := 0
		for off < len(data) {
			rec, n, derr := DecodeFrame(data[off:])
			if derr != nil {
				break // torn tail (or corrupted suffix): stop like a replica would
			}
			off += n
			if rec.Release != nil {
				if rec.Release.To > spanGen && rec.Release.To <= o.Store().Generation() {
					o.AppendDeltaSpan(*rec.Release)
					spanGen = rec.Release.To
				}
				continue
			}
			cur := o.Store().Generation()
			if rec.Generation <= cur {
				continue
			}
			if rec.Generation != cur+1 {
				t.Fatalf("bootstrap: generation gap: at %d, frame publishes %d", cur, rec.Generation)
			}
			if err := rec.Apply(o.Store()); err != nil {
				t.Fatalf("bootstrap: applying frame at generation %d: %v", rec.Generation, err)
			}
		}
	}
	return o
}

// TestDictCompactionCheckpointParity interleaves the scripted workload
// (removals and re-registrations included) with randomly placed compacting
// checkpoints, then proves recovery and replica bootstrap from the surviving
// dir agree byte-identically with each other and logically with the live
// primary — whose dictionary stays sparse until restart.
func TestDictCompactionCheckpointParity(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ops := buildScript(t, rng)
			dir := t.TempDir()
			m, err := Open(dir, Options{Sync: SyncOff})
			if err != nil {
				t.Fatal(err)
			}
			reclaimedTotal := 0
			var lastInfo CheckpointInfo
			for i, op := range ops {
				if err := op.run(m.Ontology()); err != nil {
					t.Fatalf("op %s: %v", op.name, err)
				}
				// Random interleave, plus a guaranteed checkpoint right after
				// the removal ops so the compacted base has a WAL tail (the
				// final release) to replay on top of it.
				if rng.Intn(4) == 0 || i == len(ops)-2 {
					info, err := m.Checkpoint()
					if err != nil {
						t.Fatal(err)
					}
					reclaimedTotal += info.DictIDsReclaimed
					lastInfo = info
				}
			}
			if reclaimedTotal == 0 {
				t.Fatal("no checkpoint reclaimed a TermID; compaction never fired")
			}
			if lastInfo.FormatVersion != 2 || lastInfo.CompactionEpoch == 0 {
				t.Fatalf("last checkpoint info = %+v, want v2 with a nonzero epoch", lastInfo)
			}
			liveQuads := quadStrings(m.Ontology())
			liveFP := rewriteFingerprint(m.Ontology())
			liveDictLen := m.Ontology().Store().Dict().Len()
			if err := m.Abort(); err != nil {
				t.Fatal(err)
			}

			recovered, rec, err := Inspect(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rec.CheckpointFormatVersion != 2 {
				t.Fatalf("recovery loaded a v%d checkpoint, want v2", rec.CheckpointFormatVersion)
			}
			if rec.DictIDsReclaimed == 0 {
				t.Fatal("recovery reports no reclaimed IDs; the newest checkpoint should be compacted")
			}
			if rec.DictCompactionEpoch == 0 || rec.DictRemapBytes == 0 {
				t.Fatalf("recovery info missing compaction stats: %+v", rec)
			}
			// Logical parity with the live primary: same quads, same rewriting,
			// and a dictionary denser by exactly the reclaimed count (replayed
			// tail batches re-intern their new terms on both sides).
			if got := quadStrings(recovered); !reflect.DeepEqual(got, liveQuads) {
				t.Fatalf("recovered quads diverged from the live primary (%d vs %d)", len(got), len(liveQuads))
			}
			if fp := rewriteFingerprint(recovered); fp != liveFP {
				t.Fatalf("rewriting diverged:\nrecovered: %s\nlive: %s", fp, liveFP)
			}
			if got, want := recovered.Store().Dict().Len(), liveDictLen-rec.DictIDsReclaimed; got != want {
				t.Fatalf("recovered dict has %d terms, want %d (live %d − %d reclaimed)", got, want, liveDictLen, rec.DictIDsReclaimed)
			}
			// Byte parity across rebuild paths: recovery vs replica bootstrap.
			boot := bootstrapFromDir(t, dir)
			assertOntologyByteParity(t, recovered, boot, "recovery vs bootstrap")
		})
	}
}

// TestDictCompactionKillParity extends the crash-parity offsets to a dir
// whose newest checkpoint is compacted: the WAL tail past that checkpoint is
// killed at arbitrary offsets — and the checkpoint itself corrupted, as a
// crash mid-compaction-rewrite leaves at worst a skipped file — and recovery
// must land on a valid op prefix, logically identical to a from-scratch
// rebuild and byte-identical to a replica bootstrap of the same dir.
func TestDictCompactionKillParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ops := buildScript(t, rng)
	dir := t.TempDir()
	m, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	baseGen := m.Ontology().Store().Generation()
	// Apply everything through the removals, compact, then one more release
	// so the WAL holds a replayable tail past the compacted base.
	for _, op := range ops[:len(ops)-1] {
		if err := op.run(m.Ontology()); err != nil {
			t.Fatalf("op %s: %v", op.name, err)
		}
	}
	info, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.DictIDsReclaimed == 0 {
		t.Fatalf("post-removal checkpoint reclaimed nothing: %+v", info)
	}
	ckptGen := info.Generation
	if err := ops[len(ops)-1].run(m.Ontology()); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSeqFiles(dir, segmentPrefix, segmentSuffix)
	if err != nil {
		t.Fatal(err)
	}
	lastSeg := segs[len(segs)-1]
	fi, err := os.Stat(lastSeg.path)
	if err != nil {
		t.Fatal(err)
	}
	size := fi.Size()

	trial := func(name string, mutate func(tdir string)) {
		tdir := copyDir(t, dir)
		mutate(tdir)
		recovered, rec, err := Inspect(tdir)
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", name, err)
		}
		gen := recovered.Store().Generation()
		if gen < baseGen {
			t.Fatalf("%s: recovered generation %d below the baseline %d", name, gen, baseGen)
		}
		if rec.CheckpointsSkipped == 0 && gen < ckptGen {
			t.Fatalf("%s: recovered generation %d below the intact checkpoint %d", name, gen, ckptGen)
		}
		// Logical parity with the from-scratch rebuild of the surviving prefix.
		expected := rebuildAt(t, ops, gen, nil)
		if got, want := quadStrings(recovered), quadStrings(expected); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: recovered quads diverged from the prefix rebuild", name)
		}
		if fp, wfp := rewriteFingerprint(recovered), rewriteFingerprint(expected); fp != wfp {
			t.Fatalf("%s: rewriting diverged:\n got: %s\nwant: %s", name, fp, wfp)
		}
		// Byte parity with a replica bootstrap of the same mutated dir.
		assertOntologyByteParity(t, recovered, bootstrapFromDir(t, tdir), name+": recovery vs bootstrap")
	}

	offsets := []int64{0, size}
	for i := 0; i < 6; i++ {
		offsets = append(offsets, rng.Int63n(size+1))
	}
	for _, off := range offsets {
		off := off
		trial(fmt.Sprintf("truncate@%d", off), func(tdir string) {
			if err := os.Truncate(filepath.Join(tdir, filepath.Base(lastSeg.path)), off); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Kill the compacted checkpoint itself: recovery and bootstrap both fall
	// back to the previous (uncompacted) base and replay the full WAL.
	trial("corrupt-compacted-checkpoint", func(tdir string) {
		ckpts, err := listSeqFiles(tdir, checkpointPrefix, checkpointSuffix)
		if err != nil || len(ckpts) < 2 {
			t.Fatalf("listing checkpoints: %v (%d found, want >= 2)", err, len(ckpts))
		}
		path := ckpts[len(ckpts)-1].path
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x5a
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// encodeCheckpointV1 writes the version-1 checkpoint layout (no compaction
// header), byte-for-byte what pre-compaction builds produced.
func encodeCheckpointV1(sn store.Snapshot, terms []rdf.Term, spans []core.DeltaSpan) []byte {
	buf := append([]byte(nil), checkpointMagicV1...)
	buf = binary.AppendUvarint(buf, sn.Generation())
	buf = binary.AppendUvarint(buf, uint64(len(terms)))
	for _, t := range terms {
		buf = rdf.AppendTerm(buf, t)
	}
	graphs := sn.ExportGraphIDs()
	buf = binary.AppendUvarint(buf, uint64(len(graphs)))
	for _, ids := range graphs {
		buf = binary.AppendUvarint(buf, uint64(len(ids)))
		for _, id := range ids {
			buf = binary.AppendUvarint(buf, uint64(id.Graph))
			buf = binary.AppendUvarint(buf, uint64(id.Subject))
			buf = binary.AppendUvarint(buf, uint64(id.Predicate))
			buf = binary.AppendUvarint(buf, uint64(id.Object))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(spans)))
	for _, sp := range spans {
		buf = appendSpan(buf, sp)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.Checksum(buf, castagnoli))
	return append(buf, tail[:]...)
}

// TestCheckpointV1Compatibility pins the upgrade path: a version-1 checkpoint
// still decodes and recovers with its TermIDs preserved, Open reports the
// loaded format version, and the next checkpoint rewrites the dir as v2.
func TestCheckpointV1Compatibility(t *testing.T) {
	o := core.NewOntology()
	if err := core.BuildSupersedeGlobalGraph(o); err != nil {
		t.Fatal(err)
	}
	if _, err := o.NewRelease(core.SupersedeReleaseW1()); err != nil {
		t.Fatal(err)
	}
	sn := o.Store().Snapshot()
	terms := sn.Dict().Terms()
	spans := o.DeltaLog()
	data := encodeCheckpointV1(sn, terms, spans)

	ck, err := decodeCheckpoint(data)
	if err != nil {
		t.Fatalf("decoding a v1 checkpoint: %v", err)
	}
	if ck.version != 1 || ck.epoch != 0 || ck.reclaimed != 0 {
		t.Fatalf("v1 decode: version=%d epoch=%d reclaimed=%d, want 1/0/0", ck.version, ck.epoch, ck.reclaimed)
	}
	if ck.origDictLen != len(terms) {
		t.Fatalf("v1 origDictLen = %d, want %d", ck.origDictLen, len(terms))
	}
	restored, err := store.Restore(ck.dict, ck.generation, ck.graphs)
	if err != nil {
		t.Fatal(err)
	}
	quadsEqual(t, restored.Quads(), o.Store().Quads())
	rt, wt := restored.Dict().Terms(), terms
	if len(rt) != len(wt) {
		t.Fatalf("restored dict has %d terms, want %d", len(rt), len(wt))
	}
	for i := range rt {
		if !rt[i].Equal(wt[i]) {
			t.Fatalf("restored dict term %d = %v, want %v (v1 TermIDs must be preserved)", i+1, rt[i], wt[i])
		}
	}

	// Full lifecycle: a dir holding only the v1 file opens, reports the
	// format, journals new writes, and upgrades on its next checkpoint.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, checkpointName(sn.Generation())), data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatalf("opening a v1 data dir: %v", err)
	}
	rec := m.Recovery()
	if rec.CheckpointFormatVersion != 1 {
		t.Fatalf("recovery format version = %d, want 1", rec.CheckpointFormatVersion)
	}
	if rec.CheckpointGeneration != sn.Generation() || rec.CheckpointQuads != sn.Len() {
		t.Fatalf("recovery info %+v does not match the v1 checkpoint", rec)
	}
	quadsEqual(t, m.Ontology().Store().Quads(), o.Store().Quads())
	info, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.FormatVersion != 2 {
		t.Fatalf("rewritten checkpoint format = %d, want 2", info.FormatVersion)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.CheckpointFormatVersion != 2 {
		t.Fatalf("post-upgrade recovery format version = %d, want 2", rec2.CheckpointFormatVersion)
	}
}

// TestDisableDictCompaction pins the opt-out: with the option set, a
// checkpoint after removals keeps every orphaned TermID and recovery restores
// the sparse dictionary unchanged.
func TestDisableDictCompaction(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{Sync: SyncOff, DisableDictCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	o := m.Ontology()
	if err := core.BuildSupersedeGlobalGraph(o); err != nil {
		t.Fatal(err)
	}
	if _, err := o.NewRelease(core.SupersedeReleaseW1()); err != nil {
		t.Fatal(err)
	}
	if o.RemoveWrapperRegistration("w1") == 0 {
		t.Fatal("expected the w1 registration to be removable")
	}
	liveDictLen := o.Store().Dict().Len()
	info, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.DictIDsReclaimed != 0 || info.CompactionEpoch != 0 {
		t.Fatalf("compaction ran despite being disabled: %+v", info)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, rec, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.DictIDsReclaimed != 0 {
		t.Fatalf("recovery reports %d reclaimed IDs, want 0", rec.DictIDsReclaimed)
	}
	if got := recovered.Store().Dict().Len(); got != liveDictLen {
		t.Fatalf("recovered dict has %d terms, want the sparse %d", got, liveDictLen)
	}
	// The same dir with compaction enabled reclaims on its next checkpoint.
	m2, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	info2, err := m2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info2.DictIDsReclaimed == 0 || info2.CompactionEpoch != 1 {
		t.Fatalf("re-enabled compaction did not reclaim: %+v", info2)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
}
