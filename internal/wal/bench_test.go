package wal

import (
	"fmt"
	"testing"

	"bdi/internal/core"
	"bdi/internal/rdf"
	"bdi/internal/store"
)

func benchQuads(n int) []rdf.Quad {
	quads := make([]rdf.Quad, n)
	for i := range quads {
		quads[i] = rdf.Quad{
			Triple: rdf.T(
				rdf.IRI(fmt.Sprintf("http://ex/bench/s%d", i/10)),
				rdf.IRI(fmt.Sprintf("http://ex/bench/p%d", i%17)),
				rdf.IRI(fmt.Sprintf("http://ex/bench/o%d", i)),
			),
			Graph: rdf.IRI(fmt.Sprintf("http://ex/bench/g%d", i%4)),
		}
	}
	return quads
}

// BenchmarkWALAppend measures the raw journaling cost of a 100-quad batch
// record per fsync policy (the store itself is not involved).
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []SyncPolicy{SyncOff, SyncBatch, SyncAlways} {
		b.Run(string(policy), func(b *testing.B) {
			l, err := openLog(b.TempDir(), 0, policy, 0)
			if err != nil {
				b.Fatal(err)
			}
			defer l.close()
			quads := benchQuads(100)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.append(&record{kind: recAddAll, gen: uint64(i + 1), quads: quads}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreAddAllWAL measures the end-to-end write amplification the
// acceptance criterion bounds: AddAll of 10k quads into a non-empty durable
// store versus the same store without a WAL (sub-benchmark "none"). At
// -wal-sync=batch the durable path must stay within 2x of the in-memory
// path.
func BenchmarkStoreAddAllWAL(b *testing.B) {
	const n = 10_000
	run := func(b *testing.B, attach func(s *store.Store) func()) {
		quads := benchQuads(n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := store.New()
			// Pre-populate so the batch exercises the regular merge path, not
			// the empty-store fast path.
			if _, err := s.AddAll(benchQuads(64)); err != nil {
				b.Fatal(err)
			}
			detach := attach(s)
			b.StartTimer()
			if _, err := s.AddAll(quads); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			detach()
			b.StartTimer()
		}
	}
	b.Run("none", func(b *testing.B) {
		run(b, func(*store.Store) func() { return func() {} })
	})
	for _, policy := range []SyncPolicy{SyncOff, SyncBatch, SyncAlways} {
		b.Run("sync="+string(policy), func(b *testing.B) {
			dir := b.TempDir()
			run(b, func(s *store.Store) func() {
				l, err := openLog(dir, 0, policy, 0)
				if err != nil {
					b.Fatal(err)
				}
				s.SetCommitHook(func(batch store.Batch) error {
					return l.append(&record{kind: recAddAll, gen: batch.Generation, quads: batch.Quads})
				})
				return func() {
					s.SetCommitHook(nil)
					l.close()
				}
			})
		})
	}
}

// BenchmarkStoreAddAllBulkFastPath measures the empty-store fast path the
// ROADMAP asked for: 10k quads into a fresh store build one snapshot with
// plain appends instead of per-bucket COW merges.
func BenchmarkStoreAddAllBulkFastPath(b *testing.B) {
	quads := benchQuads(10_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := store.New()
		if _, err := s.AddAll(quads); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpoint measures serializing a checkpoint of the SUPERSEDE
// ontology (write path only; no log rotation).
func BenchmarkCheckpoint(b *testing.B) {
	o, err := core.BuildSupersedeOntology(true)
	if err != nil {
		b.Fatal(err)
	}
	sn := o.Store().Snapshot()
	terms := sn.Dict().Terms()
	spans := o.DeltaLog()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if data := encodeCheckpoint(sn, terms, spans); len(data) == 0 {
			b.Fatal("empty checkpoint")
		}
	}
}

// BenchmarkRecovery measures a full Open (checkpoint load + WAL replay)
// of a data dir whose WAL tail holds half the workload.
func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	m, err := Open(dir, Options{Sync: SyncOff, CheckpointEveryBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	o := m.Ontology()
	if err := core.BuildSupersedeGlobalGraph(o); err != nil {
		b.Fatal(err)
	}
	quads := benchQuads(10_000)
	// Half the data lands in a checkpoint, half stays in the WAL tail.
	if _, err := o.Store().AddAll(quads[:5_000]); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	for i := 5_000; i < len(quads); i += 500 {
		if _, err := o.Store().AddAll(quads[i : i+500]); err != nil {
			b.Fatal(err)
		}
	}
	if err := m.Abort(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o2, rec, err := Inspect(dir)
		if err != nil {
			b.Fatal(err)
		}
		if o2.Store().Len() == 0 || rec.BatchesReplayed == 0 {
			b.Fatalf("recovery did no work: %+v", rec)
		}
	}
}
