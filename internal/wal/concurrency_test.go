package wal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bdi/internal/core"
	"bdi/internal/rdf"
	"bdi/internal/store"
)

// TestCheckpointConcurrentWithTraffic hammers the non-blocking claim: while
// writers register releases and readers pin snapshots and probe, checkpoints
// run back to back. Readers must never observe a torn batch (their pinned
// generation's quad count must be monotonic), writers must never fail, and a
// final recovery must land exactly on the last published generation. CI runs
// this under -race, so any unsynchronized access between the checkpoint
// writer (which walks snapshot buckets and the dict table) and live
// writers/readers fails the build.
func TestCheckpointConcurrentWithTraffic(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{Sync: SyncOff, CheckpointEveryBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	o := m.Ontology()
	if err := core.BuildSupersedeGlobalGraph(o); err != nil {
		t.Fatal(err)
	}

	const (
		sides    = 4
		releases = 24
		readers  = 3
	)
	for i := 0; i < sides; i++ {
		op := sideConceptOp(i)
		if err := op.run(o); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+2)
	writerDone := make(chan struct{})

	// Writer: a stream of releases; the other loops wind down after it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		for i := 0; i < releases; i++ {
			op := sideReleaseOp(i%sides, i+1)
			if err := op.run(o); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Checkpointer: back-to-back checkpoints during the writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := m.Checkpoint(); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Readers: pin snapshots and verify internal consistency.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen uint64
			var lastLen int
			for !stop.Load() {
				sn := o.Store().Snapshot()
				if sn.Generation() < lastGen {
					errs <- errGenerationWentBackwards
					return
				}
				n := len(sn.MatchIDs(store.IDPattern{}))
				if n != sn.Len() {
					errs <- errTornRead
					return
				}
				if sn.Generation() == lastGen && n != lastLen && lastGen != 0 {
					errs <- errTornRead
					return
				}
				lastGen, lastLen = sn.Generation(), n
			}
		}()
	}

	// Wind down once the writer is done.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-writerDone
		stop.Store(true)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	wantQuads := o.Store().Quads()
	wantGen := o.Store().Generation()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	o2, rec, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Store().Generation() != wantGen {
		t.Fatalf("recovered generation %d, want %d (recovery: %+v)", o2.Store().Generation(), wantGen, rec)
	}
	quadsEqual(t, o2.Store().Quads(), wantQuads)
	if len(o2.DeltaLog()) != releases {
		t.Fatalf("recovered %d delta spans, want %d", len(o2.DeltaLog()), releases)
	}
}

var (
	errGenerationWentBackwards = errConst("snapshot generation went backwards")
	errTornRead                = errConst("snapshot observed a torn batch")
)

type errConst string

func (e errConst) Error() string { return string(e) }

// TestAutoCheckpointFires: with a tiny byte threshold, appends trigger a
// background checkpoint without any explicit call.
func TestAutoCheckpointFires(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{Sync: SyncOff, CheckpointEveryBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	o := m.Ontology()
	if err := core.BuildSupersedeGlobalGraph(o); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := o.Store().Add(rdf.Quad{Triple: rdf.T(
			"http://ex/auto/s",
			"http://ex/auto/p",
			rdf.IRI(fmt.Sprintf("http://ex/auto/o%d", i)),
		)}); err != nil {
			t.Fatal(err)
		}
	}
	// The threshold was crossed many times over; wait for at least one
	// background checkpoint (beyond the initial one at Open) to land.
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().CheckpointsWritten < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("auto checkpoint never fired: %+v", m.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
