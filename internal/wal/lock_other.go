//go:build !unix

package wal

import "log/slog"

// dirLock is a no-op on platforms without flock semantics; single-writer
// discipline is the operator's responsibility there. Two processes opening
// the same data directory WILL interleave appends and corrupt the WAL — the
// warning below is the only guard rail this build provides.
type dirLock struct{}

func lockDir(dir string) (*dirLock, error) {
	slog.Warn("wal: no file locking on this platform — directory is NOT protected against concurrent writers; "+
		"running two processes against it will corrupt the log. Ensure single-process access externally.",
		"dir", dir)
	return &dirLock{}, nil
}

func (l *dirLock) release() error { return nil }
