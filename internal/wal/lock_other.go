//go:build !unix

package wal

// dirLock is a no-op on platforms without flock semantics; single-writer
// discipline is the operator's responsibility there.
type dirLock struct{}

func lockDir(dir string) (*dirLock, error) { return &dirLock{}, nil }

func (l *dirLock) release() error { return nil }
