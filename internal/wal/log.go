package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy string

const (
	// SyncAlways fsyncs after every append: a batch is durable before its
	// snapshot is published. Safest, slowest.
	SyncAlways SyncPolicy = "always"
	// SyncBatch lets appends return after the buffered write and fsyncs from
	// a background flusher every BatchInterval: group commit. A crash can
	// lose at most the records of the last interval; the store itself is
	// never inconsistent (recovery truncates the torn tail to a batch
	// boundary). The default.
	SyncBatch SyncPolicy = "batch"
	// SyncOff never fsyncs explicitly; the OS page cache decides. Useful for
	// bulk loads and benchmarks.
	SyncOff SyncPolicy = "off"
)

// ParseSyncPolicy validates a -wal-sync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch SyncPolicy(s) {
	case SyncAlways, SyncBatch, SyncOff:
		return SyncPolicy(s), nil
	default:
		return "", fmt.Errorf("wal: unknown sync policy %q (want always, batch or off)", s)
	}
}

const (
	segmentPrefix    = "wal-"
	segmentSuffix    = ".log"
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".ckpt"
)

// segmentName returns the file name of the segment whose records all have
// generations strictly greater than base.
func segmentName(base uint64) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, base, segmentSuffix)
}

func checkpointName(gen uint64) string {
	return fmt.Sprintf("%s%016x%s", checkpointPrefix, gen, checkpointSuffix)
}

// parseSeq extracts the hex sequence number from a segment or checkpoint
// file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// listSeqFiles returns the matching files of dir sorted by their sequence
// number.
func listSeqFiles(dir, prefix, suffix string) ([]seqFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []seqFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), prefix, suffix); ok {
			out = append(out, seqFile{seq: seq, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

type seqFile struct {
	seq  uint64
	path string
}

// segFile is the subset of *os.File the append path uses. Production code
// always opens real files via openSegmentFile; the disk-fault tests
// substitute implementations that fail writes or fsyncs mid-batch.
type segFile interface {
	io.Writer
	Sync() error
	Close() error
}

// openSegmentFile opens a WAL segment for appending. A package variable so
// fault-injection tests can wrap the returned file with failure injectors.
var openSegmentFile = func(path string) (segFile, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// log is the append side of the WAL: one open segment file, an encode
// buffer, and the fsync policy machinery. It is safe for concurrent use.
type log struct {
	dir      string
	policy   SyncPolicy
	interval time.Duration

	mu      sync.Mutex
	f       segFile
	base    uint64        // generation base of the open segment
	lastGen uint64        // highest generation ever appended (any segment)
	notify  chan struct{} // closed and replaced on every append (tail followers)
	buf     []byte        // reusable encode buffer
	dirty   bool          // bytes written since the last fsync
	closed  bool
	stopped chan struct{} // closes when the flusher must stop
	done    chan struct{} // closes when the flusher has stopped

	// failed latches the first write or fsync error. Once set, every
	// subsequent append is rejected: a partial frame on disk followed by
	// more acknowledged records would make recovery silently truncate the
	// later records away, so the log goes fail-stop instead.
	failed error

	// counters, guarded by mu.
	records uint64
	bytes   uint64
	fsyncs  uint64
}

// openLog opens a fresh segment for appends, with records starting after
// generation base.
func openLog(dir string, base uint64, policy SyncPolicy, interval time.Duration) (*log, error) {
	f, err := openSegmentFile(filepath.Join(dir, segmentName(base)))
	if err != nil {
		return nil, fmt.Errorf("wal: opening segment: %w", err)
	}
	l := &log{dir: dir, policy: policy, interval: interval, f: f, base: base, notify: make(chan struct{})}
	if policy == SyncBatch {
		l.stopped = make(chan struct{})
		l.done = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// append encodes and writes one record. Under SyncAlways the record is on
// stable storage when append returns; under SyncBatch and SyncOff it has
// been handed to the OS.
func (l *log) append(r *record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.failed != nil {
		return fmt.Errorf("wal: log is fail-stopped after an earlier error: %w", l.failed)
	}
	l.buf = appendRecord(l.buf[:0], r)
	if _, err := l.f.Write(l.buf); err != nil {
		l.failed = err
		return fmt.Errorf("wal: appending %s record (log now fail-stop): %w", r.kind, err)
	}
	if r.gen > l.lastGen {
		l.lastGen = r.gen
	}
	l.records++
	l.bytes += uint64(len(l.buf))
	walAppendsTotal.Inc()
	walAppendBytesTotal.Add(int64(len(l.buf)))
	l.dirty = true
	if l.policy == SyncAlways {
		start := time.Now()
		if err := l.f.Sync(); err != nil {
			l.failed = err
			return fmt.Errorf("wal: fsync (log now fail-stop): %w", err)
		}
		walFsyncSeconds.Observe(time.Since(start))
		walFsyncsTotal.Inc()
		l.fsyncs++
		l.dirty = false
	}
	// Wake tail followers (replication long-polls) only after the record is
	// fully in the segment file, so a woken reader always finds the frame.
	close(l.notify)
	l.notify = make(chan struct{})
	return nil
}

// appendNotify returns a channel that is closed when the next record lands
// in a segment file. Tail followers re-arm by calling it again.
func (l *log) appendNotify() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.notify
}

// sync forces an fsync of the open segment regardless of policy.
func (l *log) sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *log) syncLocked() error {
	if l.failed != nil {
		return l.failed
	}
	if l.closed || !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		// Latch it: after a failed fsync the kernel may have dropped the
		// dirty pages, so a later "successful" retry would not make the
		// data durable. Every subsequent append is rejected; Stats surfaces
		// the error.
		l.failed = err
		return err
	}
	walFsyncSeconds.Observe(time.Since(start))
	walFsyncsTotal.Inc()
	l.fsyncs++
	l.dirty = false
	return nil
}

// flushLoop is the SyncBatch group-commit flusher.
func (l *log) flushLoop() {
	defer close(l.done)
	interval := l.interval
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopped:
			return
		case <-t.C:
			l.mu.Lock()
			_ = l.syncLocked()
			l.mu.Unlock()
		}
	}
}

// rotate closes the open segment (fsyncing it) and opens a fresh one whose
// records start after generation base. Appends block only for the swap.
// The effective base is raised to the highest generation ever appended:
// the caller derives base from the store's published generation, but a
// commit hook may already have appended the next generation's record
// (append happens before publication) — naming the new segment below that
// record's generation would let recovery's segment-skip rule drop a
// committed, possibly fsync-acknowledged batch.
func (l *log) rotate(base uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.lastGen > base {
		base = l.lastGen
	}
	if err := l.syncLocked(); err != nil {
		return fmt.Errorf("wal: fsync before rotation: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing rotated segment: %w", err)
	}
	f, err := openSegmentFile(filepath.Join(l.dir, segmentName(base)))
	if err != nil {
		return fmt.Errorf("wal: opening rotated segment: %w", err)
	}
	l.f = f
	l.base = base
	l.dirty = false
	return nil
}

// close fsyncs and closes the open segment and stops the flusher.
func (l *log) close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	syncErr := l.syncLocked()
	l.closed = true
	closeErr := l.f.Close()
	stopped := l.stopped
	l.mu.Unlock()
	if stopped != nil {
		close(stopped)
		<-l.done
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// counters returns the append counters.
func (l *log) counters() (records, bytes, fsyncs uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records, l.bytes, l.fsyncs
}

// failure returns the latched fail-stop error, or nil.
func (l *log) failure() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// syncDir fsyncs a directory so renames and creations in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
