package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bdi/internal/core"
	"bdi/internal/rdf"
	"bdi/internal/store"
)

func quadsEqual(t *testing.T, got, want []rdf.Quad) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("quad count = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].String() != want[i].String() {
			t.Fatalf("quad %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRecordRoundTrip(t *testing.T) {
	span := core.DeltaSpan{
		From: 41, To: 42,
		Delta: &core.ReleaseDelta{
			Wrapper:    "http://ex/w1",
			Source:     "http://ex/D1",
			Sequence:   7,
			Concepts:   []rdf.IRI{"http://ex/A", "http://ex/B"},
			Features:   []rdf.IRI{"http://ex/f"},
			Attributes: []rdf.IRI{"http://ex/attr/a"},
			Edges:      [][2]rdf.IRI{{"http://ex/A", "http://ex/B"}},
		},
	}
	records := []*record{
		{kind: recAddAll, gen: 3, quads: []rdf.Quad{
			{Triple: rdf.T("http://ex/s", "http://ex/p", "http://ex/o"), Graph: "http://ex/g"},
			{Triple: rdf.Triple{Subject: rdf.IRI("http://ex/s"), Predicate: rdf.IRI("http://ex/p"), Object: rdf.NewLangLiteral("héllo\nworld", "en")}},
			{Triple: rdf.Triple{Subject: rdf.NewBlankNode("b0"), Predicate: rdf.IRI("http://ex/p"), Object: rdf.NewIntegerLiteral(-5)}},
		}},
		{kind: recRemove, gen: 4, quads: []rdf.Quad{{Triple: rdf.T("http://ex/s", "http://ex/p", "http://ex/o"), Graph: "http://ex/g"}}},
		{kind: recRemoveGraph, gen: 5, graph: "http://ex/g"},
		{kind: recClear, gen: 6},
		{kind: recRelease, gen: 42, span: span},
	}
	var buf []byte
	for _, r := range records {
		buf = appendRecord(buf, r)
	}
	for _, want := range records {
		got, n, err := decodeRecord(buf)
		if err != nil {
			t.Fatalf("decoding %s record: %v", want.kind, err)
		}
		buf = buf[n:]
		if got.kind != want.kind || got.gen != want.gen || got.graph != want.graph {
			t.Fatalf("decoded %+v, want %+v", got, want)
		}
		quadsEqual(t, got.quads, want.quads)
		if want.kind == recRelease && !reflect.DeepEqual(got.span, want.span) {
			t.Fatalf("decoded span %+v, want %+v", got.span, want.span)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after decoding all records", len(buf))
	}
}

func TestRecordRejectsCorruption(t *testing.T) {
	r := &record{kind: recAddAll, gen: 1, quads: []rdf.Quad{{Triple: rdf.T("http://ex/s", "http://ex/p", "http://ex/o")}}}
	clean := appendRecord(nil, r)
	for i := 0; i < len(clean); i++ {
		bad := append([]byte(nil), clean...)
		bad[i] ^= 0x40
		if _, _, err := decodeRecord(bad); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	for cut := 0; cut < len(clean); cut++ {
		if _, _, err := decodeRecord(clean[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", cut)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	o, err := core.BuildSupersedeOntology(true)
	if err != nil {
		t.Fatal(err)
	}
	s := o.Store()
	sn := s.Snapshot()
	spans := o.DeltaLog()
	if len(spans) == 0 {
		t.Fatal("expected release deltas in the SUPERSEDE ontology")
	}
	data := encodeCheckpoint(sn, sn.Dict().Terms(), spans)
	ck, err := decodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if ck.generation != sn.Generation() {
		t.Fatalf("checkpoint generation = %d, want %d", ck.generation, sn.Generation())
	}
	restored, err := store.Restore(ck.dict, ck.generation, ck.graphs)
	if err != nil {
		t.Fatal(err)
	}
	quadsEqual(t, restored.Quads(), s.Quads())
	if got, want := restored.Dict().Len(), s.Dict().Len(); got != want {
		t.Fatalf("restored dict has %d terms, want %d", got, want)
	}
	if !reflect.DeepEqual(ck.spans, spans) {
		t.Fatalf("restored spans = %+v, want %+v", ck.spans, spans)
	}
	// Flip one byte anywhere: the checkpoint must be rejected.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x01
	if _, err := decodeCheckpoint(bad); err == nil {
		t.Fatal("corrupted checkpoint went undetected")
	}
}

// TestOpenCloseReopen exercises the full lifecycle: fresh dir, writes,
// clean close, reopen, parity.
func TestOpenCloseReopen(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	o := m.Ontology()
	if err := core.BuildSupersedeGlobalGraph(o); err != nil {
		t.Fatal(err)
	}
	for _, r := range []core.Release{core.SupersedeReleaseW1(), core.SupersedeReleaseW2(), core.SupersedeReleaseW3()} {
		if _, err := o.NewRelease(r); err != nil {
			t.Fatal(err)
		}
	}
	wantQuads := o.Store().Quads()
	wantGen := o.Store().Generation()
	wantSpans := o.DeltaLog()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	o2 := m2.Ontology()
	quadsEqual(t, o2.Store().Quads(), wantQuads)
	if got := o2.Store().Generation(); got != wantGen {
		t.Fatalf("recovered generation = %d, want %d", got, wantGen)
	}
	if !reflect.DeepEqual(o2.DeltaLog(), wantSpans) {
		t.Fatalf("recovered delta log = %+v, want %+v", o2.DeltaLog(), wantSpans)
	}
	// The clean close checkpointed everything: no batches should replay.
	if rec := m2.Recovery(); rec.BatchesReplayed != 0 {
		t.Fatalf("clean reopen replayed %d batches, want 0", rec.BatchesReplayed)
	}
	// The ontology stays writable after recovery, and new writes journal.
	if _, err := o2.NewRelease(core.SupersedeReleaseW4()); err != nil {
		t.Fatal(err)
	}
}

// TestReplayWithoutCheckpointCoverage reopens after Abort (no final
// checkpoint): everything past the initial checkpoint must come from WAL
// replay, including removals and the release spans.
func TestReplayWithoutCheckpointCoverage(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	o := m.Ontology()
	if err := core.BuildSupersedeGlobalGraph(o); err != nil {
		t.Fatal(err)
	}
	for _, r := range []core.Release{core.SupersedeReleaseW1(), core.SupersedeReleaseW2()} {
		if _, err := o.NewRelease(r); err != nil {
			t.Fatal(err)
		}
	}
	// A point removal and a graph removal must replay too.
	w2 := core.WrapperURI("w2")
	mapQuad := rdf.Quad{Triple: rdf.T(w2, core.MMapping, core.MappingGraphURI("w2")), Graph: core.MappingsGraphName}
	if !o.Store().Remove(mapQuad) {
		t.Fatal("expected the w2 mapping triple to be removable")
	}
	if o.Store().RemoveGraph(core.MappingGraphURI("w2")) == 0 {
		t.Fatal("expected the w2 LAV graph to be removable")
	}
	wantQuads := o.Store().Quads()
	wantGen := o.Store().Generation()
	wantSpans := o.DeltaLog()
	if err := m.Abort(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	o2 := m2.Ontology()
	quadsEqual(t, o2.Store().Quads(), wantQuads)
	if got := o2.Store().Generation(); got != wantGen {
		t.Fatalf("recovered generation = %d, want %d", got, wantGen)
	}
	if !reflect.DeepEqual(o2.DeltaLog(), wantSpans) {
		t.Fatalf("recovered delta log = %+v, want %+v", o2.DeltaLog(), wantSpans)
	}
	rec := m2.Recovery()
	if rec.BatchesReplayed == 0 {
		t.Fatal("expected WAL replay after Abort")
	}
	if rec.SpansRestored != len(wantSpans) {
		t.Fatalf("spans restored = %d, want %d", rec.SpansRestored, len(wantSpans))
	}
}

// TestClearReplays verifies that Clear (which swaps the dictionary) is
// journaled and replayed.
func TestClearReplays(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	o := m.Ontology()
	o.Store().Clear()
	if _, err := o.Store().Add(rdf.Quad{Triple: rdf.T("http://ex/s", "http://ex/p", "http://ex/o")}); err != nil {
		t.Fatal(err)
	}
	wantQuads := o.Store().Quads()
	wantGen := o.Store().Generation()
	if err := m.Abort(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	quadsEqual(t, m2.Ontology().Store().Quads(), wantQuads)
	if got := m2.Ontology().Store().Generation(); got != wantGen {
		t.Fatalf("recovered generation = %d, want %d", got, wantGen)
	}
}

// TestCheckpointPrunesAndRecovers: checkpoints rotate the WAL, prune
// superseded segments, keep two checkpoints, and recovery prefers the
// newest valid one.
func TestCheckpointPrunesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	o := m.Ontology()
	if err := core.BuildSupersedeGlobalGraph(o); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := o.NewRelease(core.SupersedeReleaseW1()); err != nil {
		t.Fatal(err)
	}
	info, err := m.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != o.Store().Generation() {
		t.Fatalf("checkpoint generation = %d, want %d", info.Generation, o.Store().Generation())
	}
	ckpts, err := listSeqFiles(dir, checkpointPrefix, checkpointSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 2 {
		t.Fatalf("checkpoints on disk = %d, want 2", len(ckpts))
	}
	wantQuads := o.Store().Quads()
	if err := m.Abort(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest checkpoint: recovery must fall back to the older
	// one and replay the retained WAL suffix.
	newest := ckpts[len(ckpts)-1].path
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	o2, rec, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CheckpointsSkipped != 1 {
		t.Fatalf("checkpoints skipped = %d, want 1", rec.CheckpointsSkipped)
	}
	quadsEqual(t, o2.Store().Quads(), wantQuads)
}

// TestTornTailTruncation writes records, chops the segment mid-record, and
// verifies recovery lands on the longest valid prefix and truncates the
// file.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	o := m.Ontology()
	if err := core.BuildSupersedeGlobalGraph(o); err != nil {
		t.Fatal(err)
	}
	preGen := o.Store().Generation()
	if _, err := o.NewRelease(core.SupersedeReleaseW1()); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSeqFiles(dir, segmentPrefix, segmentSuffix)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last.path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop 3 bytes off the tail: the release's span record (last) becomes
	// torn; the release's batch itself stays.
	if err := os.Truncate(last.path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rec := m2.Recovery()
	if !rec.TornTail || rec.TruncatedBytes == 0 {
		t.Fatalf("expected a torn tail, got %+v", rec)
	}
	if got := m2.Ontology().Store().Generation(); got != preGen+1 {
		t.Fatalf("recovered generation = %d, want %d (release batch kept, span record torn)", got, preGen+1)
	}
	if spans := m2.Ontology().DeltaLog(); len(spans) != 0 {
		t.Fatalf("delta log = %+v, want empty (span record was torn away)", spans)
	}
}

func TestWALSegmentsButNoCheckpointFails(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentName(0)), appendRecord(nil, &record{kind: recClear, gen: 1}), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Inspect(dir); err == nil {
		t.Fatal("expected an error for a dir with segments but no checkpoint")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, good := range []string{"always", "batch", "off"} {
		if _, err := ParseSyncPolicy(good); err != nil {
			t.Fatalf("ParseSyncPolicy(%q): %v", good, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("expected an error for an unknown policy")
	}
}

func TestSyncAlwaysCountsFsyncs(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Ontology().Store().Add(rdf.Quad{Triple: rdf.T("http://ex/s", "http://ex/p", "http://ex/o")}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Fsyncs == 0 {
		t.Fatalf("sync=always recorded no fsyncs: %+v", st)
	}
	if st.RecordsAppended == 0 || st.BytesAppended == 0 {
		t.Fatalf("append counters empty: %+v", st)
	}
}

// TestOpenLocksDataDir: two managers must never share a data dir — the
// second Open fails while the first holds the lock, and succeeds after a
// clean Close.
func TestOpenLocksDataDir(t *testing.T) {
	dir := t.TempDir()
	m1, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: SyncOff}); err == nil {
		t.Fatal("second Open of a locked data dir succeeded")
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
}
