package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bdi/internal/core"
	"bdi/internal/rdf"
	"bdi/internal/rewriting"
	"bdi/internal/store"
)

// The crash-recovery parity suite: a scripted workload runs against a
// durable manager, the process "crashes" (Abort: no final checkpoint, no
// fsync), the WAL is truncated or corrupted at arbitrary offsets, and the
// recovered state must be byte-identical — quads, dictionary TermIDs,
// MatchIDs output and query rewriting — to a from-scratch rebuild of the
// op prefix the surviving log encodes. Every script op publishes exactly
// one store generation, so "which prefix survived" is read directly off the
// recovered generation.

// scriptOp is one workload step; run must bump the store generation by
// exactly one.
type scriptOp struct {
	name string
	run  func(o *core.Ontology) error
}

// supersedeGlobalQuads returns the SUPERSEDE Global-graph triples as one
// quad batch (the delta over a fresh ontology), so the script can install G
// in a single generation.
func supersedeGlobalQuads(t *testing.T) []rdf.Quad {
	t.Helper()
	scratch := core.NewOntology()
	if err := core.BuildSupersedeGlobalGraph(scratch); err != nil {
		t.Fatal(err)
	}
	base := map[string]bool{}
	for _, q := range core.NewOntology().Store().Quads() {
		base[q.String()] = true
	}
	var out []rdf.Quad
	for _, q := range scratch.Store().Quads() {
		if !base[q.String()] {
			out = append(out, q)
		}
	}
	if len(out) == 0 {
		t.Fatal("no global-graph quads derived")
	}
	return out
}

func sideConcept(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("http://ex/crash/Side%d", i)) }
func sideFeature(i int, kind string) rdf.IRI {
	return rdf.IRI(fmt.Sprintf("http://ex/crash/side%d_%s", i, kind))
}

// sideConceptOp adds side concept i (with an id and a value feature) to G
// in one batch.
func sideConceptOp(i int) scriptOp {
	return scriptOp{
		name: fmt.Sprintf("side-concept-%d", i),
		run: func(o *core.Ontology) error {
			quads := []rdf.Quad{
				{Triple: rdf.T(sideConcept(i), rdf.RDFType, core.GConcept), Graph: core.GlobalGraphName},
				{Triple: rdf.T(sideFeature(i, "id"), rdf.RDFType, core.GFeature), Graph: core.GlobalGraphName},
				{Triple: rdf.T(sideFeature(i, "value"), rdf.RDFType, core.GFeature), Graph: core.GlobalGraphName},
				{Triple: rdf.T(sideConcept(i), core.GHasFeature, sideFeature(i, "id")), Graph: core.GlobalGraphName},
				{Triple: rdf.T(sideConcept(i), core.GHasFeature, sideFeature(i, "value")), Graph: core.GlobalGraphName},
			}
			n, err := o.Store().AddAll(quads)
			if err != nil {
				return err
			}
			if n != len(quads) {
				return fmt.Errorf("side concept %d: %d of %d quads added", i, n, len(quads))
			}
			return nil
		},
	}
}

// sideReleaseOp registers a wrapper over side concept i.
func sideReleaseOp(i, seq int) scriptOp {
	name := fmt.Sprintf("w_crash_side%d_%d", i, seq)
	return scriptOp{
		name: "release-" + name,
		run: func(o *core.Ontology) error {
			g := rdf.NewGraph("")
			g.Add(
				rdf.T(sideConcept(i), core.GHasFeature, sideFeature(i, "id")),
				rdf.T(sideConcept(i), core.GHasFeature, sideFeature(i, "value")),
			)
			_, err := o.NewRelease(core.Release{
				Wrapper: core.WrapperSpec{
					Name:            name,
					Source:          fmt.Sprintf("D_crash_side%d_%d", i, seq),
					IDAttributes:    []string{"id"},
					NonIDAttributes: []string{"value"},
				},
				Subgraph: g,
				F:        map[string]rdf.IRI{"id": sideFeature(i, "id"), "value": sideFeature(i, "value")},
			})
			return err
		},
	}
}

// buildScript assembles the seeded workload: the SUPERSEDE scenario, side
// concepts with releases, a point removal and a graph removal.
func buildScript(t *testing.T, rng *rand.Rand) []scriptOp {
	gQuads := supersedeGlobalQuads(t)
	ops := []scriptOp{{
		name: "global-graph",
		run: func(o *core.Ontology) error {
			n, err := o.Store().AddAll(gQuads)
			if err != nil {
				return err
			}
			if n != len(gQuads) {
				return fmt.Errorf("global graph: %d of %d quads added", n, len(gQuads))
			}
			return nil
		},
	}}
	for _, r := range []func() core.Release{
		core.SupersedeReleaseW1, core.SupersedeReleaseW2, core.SupersedeReleaseW3, core.SupersedeReleaseW4,
	} {
		release := r()
		ops = append(ops, scriptOp{
			name: "release-" + release.Wrapper.Name,
			run:  func(o *core.Ontology) error { _, err := o.NewRelease(release); return err },
		})
	}
	nSides := 2 + rng.Intn(3)
	for i := 0; i < nSides; i++ {
		ops = append(ops, sideConceptOp(i))
	}
	seq := 0
	for i := 0; i < nSides*2; i++ {
		seq++
		ops = append(ops, sideReleaseOp(rng.Intn(nSides), seq))
	}
	// A point removal: drop the M:mapping triple of the first side wrapper.
	victim := "w_crash_side" // completed below once we know a registered name
	for _, op := range ops {
		if strings.HasPrefix(op.name, "release-w_crash_side") {
			victim = strings.TrimPrefix(op.name, "release-")
			break
		}
	}
	ops = append(ops, scriptOp{
		name: "remove-mapping-" + victim,
		run: func(o *core.Ontology) error {
			q := rdf.Quad{
				Triple: rdf.T(core.WrapperURI(victim), core.MMapping, core.MappingGraphURI(victim)),
				Graph:  core.MappingsGraphName,
			}
			if !o.Store().Remove(q) {
				return fmt.Errorf("mapping triple of %s not present", victim)
			}
			return nil
		},
	})
	ops = append(ops, scriptOp{
		name: "remove-graph-" + victim,
		run: func(o *core.Ontology) error {
			if o.Store().RemoveGraph(core.MappingGraphURI(victim)) == 0 {
				return fmt.Errorf("LAV graph of %s already empty", victim)
			}
			return nil
		},
	})
	// A final release after the removals, so truncation can land on a
	// suffix whose delta interval follows non-release mutations.
	seq++
	ops = append(ops, sideReleaseOp(0, seq))
	return ops
}

// runScript applies ops in order, asserting the one-generation-per-op
// contract, and returns per generation: the pinned snapshot, the delta log,
// and the dictionary size at that point (snapshots share the append-only
// dictionary, so the size must be captured live — a pinned snapshot's
// Dict() keeps growing with later ops).
func runScript(t *testing.T, o *core.Ontology, ops []scriptOp) (map[uint64]store.Snapshot, map[uint64][]core.DeltaSpan, map[uint64]int) {
	t.Helper()
	gen := o.Store().Generation()
	snaps := map[uint64]store.Snapshot{gen: o.Store().Snapshot()}
	logs := map[uint64][]core.DeltaSpan{gen: o.DeltaLog()}
	dictLens := map[uint64]int{gen: o.Store().Dict().Len()}
	for _, op := range ops {
		before := o.Store().Generation()
		if err := op.run(o); err != nil {
			t.Fatalf("op %s: %v", op.name, err)
		}
		after := o.Store().Generation()
		if after != before+1 {
			t.Fatalf("op %s bumped generation %d -> %d, want exactly one", op.name, before, after)
		}
		snaps[after] = o.Store().Snapshot()
		logs[after] = o.DeltaLog()
		dictLens[after] = o.Store().Dict().Len()
	}
	return snaps, logs, dictLens
}

// copyDir clones the data dir so each trial mutates its own copy.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// demoOMQ is the running-example query used for rewriting parity.
func demoOMQ() *rewriting.OMQ {
	return rewriting.NewOMQ(
		[]rdf.IRI{core.SupApplicationID, core.SupLagRatio},
		rdf.T(core.SupSoftwareApplication, core.GHasFeature, core.SupApplicationID),
		rdf.T(core.SupSoftwareApplication, core.SupHasMonitor, core.SupMonitor),
		rdf.T(core.SupMonitor, core.SupGeneratesQoS, core.SupInfoMonitor),
		rdf.T(core.SupInfoMonitor, core.GHasFeature, core.SupLagRatio),
	)
}

// rewriteFingerprint rewrites the demo OMQ and renders the full UCQ (walk
// order and content) or the error, for byte-level comparison.
func rewriteFingerprint(o *core.Ontology) string {
	res, err := rewriting.NewRewriter(o).Rewrite(demoOMQ())
	if err != nil {
		return "error: " + err.Error()
	}
	return strings.Join(res.UCQ.Signatures(), "|") + "\n" + res.UCQ.String()
}

// assertStateParity compares the recovered ontology against the expected
// snapshot at the same generation: quads, dictionary table, MatchIDs in raw
// TermID space, and rewriting output. wantDictLen is the baseline
// dictionary size as of that generation (the baseline dict keeps growing
// with later ops; the recovered table must equal its prefix).
func assertStateParity(t *testing.T, recovered *core.Ontology, want store.Snapshot, wantDictLen int, label string) {
	t.Helper()
	got := recovered.Store().Snapshot()
	if got.Generation() != want.Generation() {
		t.Fatalf("%s: generation = %d, want %d", label, got.Generation(), want.Generation())
	}
	gq, wq := got.Quads(), want.Quads()
	if len(gq) != len(wq) {
		t.Fatalf("%s: %d quads, want %d", label, len(gq), len(wq))
	}
	for i := range gq {
		if gq[i].String() != wq[i].String() {
			t.Fatalf("%s: quad %d = %s, want %s", label, i, gq[i], wq[i])
		}
	}
	// Dictionary parity: same terms at the same TermIDs, exactly as many as
	// the baseline had interned by this generation. This is what makes
	// MatchIDs byte-identical, not merely equivalent.
	gt, wt := got.Dict().Terms(), want.Dict().Terms()
	if len(gt) != wantDictLen {
		t.Fatalf("%s: dict has %d terms, want %d", label, len(gt), wantDictLen)
	}
	for i := range gt {
		if !gt[i].Equal(wt[i]) {
			t.Fatalf("%s: dict term %d = %v, want %v", label, i+1, gt[i], wt[i])
		}
	}
	// MatchIDs parity on raw IDs for a few probe shapes.
	probes := []store.Pattern{
		{},
		store.WildcardGraph(nil, rdf.RDFType, nil),
		store.InGraph(core.SourceGraphName, nil, nil, nil),
		store.WildcardGraph(nil, rdf.OWLSameAs, nil),
	}
	for pi, p := range probes {
		gi := got.MatchWithIDs(p)
		wi := want.MatchWithIDs(p)
		if len(gi) != len(wi) {
			t.Fatalf("%s: probe %d returned %d matches, want %d", label, pi, len(gi), len(wi))
		}
		for i := range gi {
			if gi[i].ID != wi[i].ID {
				t.Fatalf("%s: probe %d match %d ID = %+v, want %+v", label, pi, i, gi[i].ID, wi[i].ID)
			}
		}
	}
}

// TestCrashRecoveryParity is the main fault-injection suite: the WAL of a
// crashed run is truncated at arbitrary offsets (frame boundaries and
// mid-record alike) and recovery must land on the exact op prefix the
// surviving records encode, byte-identical to a from-scratch rebuild.
func TestCrashRecoveryParity(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ops := buildScript(t, rng)

			// Durable run (the one that crashes).
			dir := t.TempDir()
			m, err := Open(dir, Options{Sync: SyncOff})
			if err != nil {
				t.Fatal(err)
			}
			baseGen := m.Ontology().Store().Generation()
			// A mid-script checkpoint on one seed exercises checkpoint +
			// tail replay; the others replay the whole WAL.
			half := len(ops) / 2
			durableSnaps, _, _ := runScript(t, m.Ontology(), ops[:half])
			if seed == 2 {
				if _, err := m.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
			tailSnaps, _, _ := runScript(t, m.Ontology(), ops[half:])
			for gen, sn := range tailSnaps {
				durableSnaps[gen] = sn
			}
			if err := m.Abort(); err != nil {
				t.Fatal(err)
			}

			// From-scratch rebuild (no WAL involved at all): the parity
			// baseline, one pinned snapshot per generation.
			expected := core.NewOntology()
			if expected.Store().Generation() != baseGen {
				t.Fatalf("baseline generation %d, durable baseline %d", expected.Store().Generation(), baseGen)
			}
			expSnaps, expLogs, expDictLens := runScript(t, expected, ops)
			for gen, sn := range expSnaps {
				if durableSnaps[gen].Len() != sn.Len() {
					t.Fatalf("durable and baseline runs diverged at generation %d", gen)
				}
			}

			segs, err := listSeqFiles(dir, segmentPrefix, segmentSuffix)
			if err != nil {
				t.Fatal(err)
			}
			lastSeg := segs[len(segs)-1]
			fi, err := os.Stat(lastSeg.path)
			if err != nil {
				t.Fatal(err)
			}
			size := fi.Size()

			trial := func(name string, mutate func(tdir, seg string)) {
				tdir := copyDir(t, dir)
				mutate(tdir, filepath.Join(tdir, filepath.Base(lastSeg.path)))
				m2, err := Open(tdir, Options{Sync: SyncOff})
				if err != nil {
					t.Fatalf("%s: recovery failed: %v", name, err)
				}
				defer m2.Abort()
				rec := m2.Ontology()
				gen := rec.Store().Generation()
				want, ok := expSnaps[gen]
				if !ok {
					t.Fatalf("%s: recovered to generation %d, which no op prefix produces", name, gen)
				}
				assertStateParity(t, rec, want, expDictLens[gen], name)
				if fp, wfp := rewriteFingerprint(rec), rewriteFingerprint(rebuildAt(t, ops, gen, expected)); fp != wfp {
					t.Fatalf("%s: rewriting diverged:\n got: %s\nwant: %s", name, fp, wfp)
				}
				// The recovered delta log must be a prefix of the baseline's
				// log at that generation: at most the latest span may be
				// missing (its release record torn off after its batch).
				wantLog := expLogs[gen]
				gotLog := rec.DeltaLog()
				if len(gotLog) < len(wantLog)-1 || len(gotLog) > len(wantLog) {
					t.Fatalf("%s: delta log has %d spans, want %d (or one fewer)", name, len(gotLog), len(wantLog))
				}
				for i := range gotLog {
					if gotLog[i].From != wantLog[i].From || gotLog[i].To != wantLog[i].To ||
						gotLog[i].Delta.Wrapper != wantLog[i].Delta.Wrapper {
						t.Fatalf("%s: delta span %d = %+v, want %+v", name, i, gotLog[i], wantLog[i])
					}
				}
			}

			if size == 0 {
				t.Fatal("final segment is empty; the trials would be vacuous")
			}
			// Kill at random offsets within the last segment, including 0
			// (only earlier segments / the checkpoint survive) and full size.
			offsets := []int64{0, size}
			for i := 0; i < 8; i++ {
				offsets = append(offsets, rng.Int63n(size+1))
			}
			for _, off := range offsets {
				trial(fmt.Sprintf("truncate@%d", off), func(tdir, seg string) {
					if err := os.Truncate(seg, off); err != nil {
						t.Fatal(err)
					}
				})
			}
			// Flip bytes at random offsets: the CRC must fence off the
			// corrupted suffix; the surviving prefix still recovers.
			for i := 0; i < 4; i++ {
				off := rng.Int63n(size)
				trial(fmt.Sprintf("corrupt@%d", off), func(tdir, seg string) {
					data, err := os.ReadFile(seg)
					if err != nil {
						t.Fatal(err)
					}
					data[off] ^= 0x5a
					if err := os.WriteFile(seg, data, 0o644); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}

// rebuildAt returns a fresh ontology rebuilt by applying the op prefix that
// ends at generation gen — the "from-scratch rebuild" of the acceptance
// criterion (the rewriting side needs a live ontology, not just a pinned
// snapshot; reuse is fine because ops are deterministic).
func rebuildAt(t *testing.T, ops []scriptOp, gen uint64, _ *core.Ontology) *core.Ontology {
	t.Helper()
	o := core.NewOntology()
	for _, op := range ops {
		if o.Store().Generation() >= gen {
			break
		}
		if err := op.run(o); err != nil {
			t.Fatalf("rebuild op %s: %v", op.name, err)
		}
	}
	if o.Store().Generation() != gen {
		t.Fatalf("rebuild stopped at generation %d, want %d", o.Store().Generation(), gen)
	}
	return o
}
