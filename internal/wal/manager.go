package wal

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"bdi/internal/core"
	"bdi/internal/store"
)

// Options configures a Manager.
type Options struct {
	// Sync selects the fsync policy (default SyncBatch).
	Sync SyncPolicy
	// BatchInterval is the SyncBatch group-commit interval (default 10ms).
	BatchInterval time.Duration
	// CheckpointEveryBytes triggers an automatic background checkpoint after
	// this many WAL bytes have been appended since the last one. 0 uses the
	// default (64 MiB); negative disables automatic checkpoints.
	CheckpointEveryBytes int64
	// DisableDictCompaction turns off the dictionary compaction pass that
	// checkpoints run by default: orphaned TermIDs (left behind by
	// RemoveGraph and wrapper deregistration — the dictionary itself is
	// append-only) are reclaimed by writing the checkpoint under densely
	// reassigned IDs. Recovery and replica bootstrap from a compacted
	// checkpoint rebuild byte-identical stores under the new IDs; the live
	// process keeps its old IDs until it next restarts.
	DisableDictCompaction bool
}

const defaultCheckpointEveryBytes = 64 << 20

// Manager owns the durability state of one data directory: it journals
// every store mutation batch and release registration into the WAL (hooked
// in ahead of snapshot publication), writes checkpoints of pinned
// snapshots concurrently with live traffic, and performs recovery at Open.
type Manager struct {
	dir  string
	opts Options

	ontology *core.Ontology
	st       *store.Store
	log      *log
	lock     *dirLock

	recovery RecoveryInfo

	// ckptMu serializes checkpoint writers; ckptRunning lets the automatic
	// trigger skip instead of queueing behind a running checkpoint.
	ckptMu      sync.Mutex
	ckptRunning atomic.Bool
	closed      atomic.Bool

	// checkpoint bookkeeping, guarded by statMu.
	statMu          sync.Mutex
	lastCkptGen     uint64
	lastCkptTime    time.Time
	lastCkptBytes   int64
	ckptCount       uint64
	logBytesAtCkpt  uint64
	checkpointError string
	// compactionEpoch counts dictionary compactions over the data dir's
	// lifetime; seeded from the recovered checkpoint and bumped whenever a
	// checkpoint reclaims at least one TermID.
	compactionEpoch uint64
	lastReclaimed   int
}

// Open recovers the ontology persisted in dir (creating the directory and
// an initial checkpoint when it is fresh) and returns a Manager journaling
// every subsequent mutation. The recovered ontology is available via
// Ontology; hooks are attached before Open returns, so no write can slip
// past the log.
func Open(dir string, opts Options) (*Manager, error) {
	if opts.Sync == "" {
		opts.Sync = SyncBatch
	}
	if _, err := ParseSyncPolicy(string(opts.Sync)); err != nil {
		return nil, err
	}
	if opts.CheckpointEveryBytes == 0 {
		opts.CheckpointEveryBytes = defaultCheckpointEveryBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating data dir: %w", err)
	}
	// Exclusive advisory lock for the manager's lifetime: a second process
	// appending to the same segments would corrupt the generation sequence
	// beyond recovery.
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	removeStaleTemp(dir)

	m := &Manager{dir: dir, opts: opts, lock: lock}
	fresh := false
	s, spans, info, err := recoverDir(dir, true)
	switch {
	case err == nil:
		m.st = s
		m.ontology = core.RestoreOntology(s, spans)
		m.recovery = info
	case errors.Is(err, errFreshDir):
		fresh = true
		m.ontology = core.NewOntology()
		m.st = m.ontology.Store()
	default:
		lock.release()
		return nil, err
	}

	l, err := openLog(dir, m.st.Generation(), opts.Sync, opts.BatchInterval)
	if err != nil {
		lock.release()
		return nil, err
	}
	m.log = l
	if err := syncDir(dir); err != nil {
		l.close()
		lock.release()
		return nil, fmt.Errorf("wal: fsyncing data dir: %w", err)
	}

	// A fresh dir gets an immediate checkpoint so recovery never depends on
	// rebuilding the baseline (metamodel) state from code: every data dir
	// always contains a checkpoint to replay from.
	if fresh {
		if _, err := m.Checkpoint(); err != nil {
			l.close()
			lock.release()
			return nil, err
		}
	} else {
		m.statMu.Lock()
		m.lastCkptGen = m.recovery.CheckpointGeneration
		m.compactionEpoch = m.recovery.DictCompactionEpoch
		m.statMu.Unlock()
	}

	m.st.SetCommitHook(m.onBatch)
	m.ontology.SetReleaseHook(m.onRelease)
	return m, nil
}

// Inspect performs read-only recovery of a data dir: the log files are not
// truncated, no segment is opened for appends and no hook is attached. It
// returns the recovered ontology and what recovery found.
func Inspect(dir string) (*core.Ontology, RecoveryInfo, error) {
	s, spans, info, err := recoverDir(dir, false)
	if err != nil {
		return nil, info, err
	}
	return core.RestoreOntology(s, spans), info, nil
}

// Ontology returns the recovered (or freshly initialized) ontology the
// manager journals.
func (m *Manager) Ontology() *core.Ontology { return m.ontology }

// Recovery returns what recovery at Open found.
func (m *Manager) Recovery() RecoveryInfo { return m.recovery }

// onBatch is the store commit hook: journal the batch before its snapshot
// is published.
func (m *Manager) onBatch(b store.Batch) error {
	r := record{gen: b.Generation}
	switch b.Kind {
	case store.BatchAdd:
		r.kind = recAddAll
		r.quads = b.Quads
	case store.BatchRemove:
		r.kind = recRemove
		r.quads = b.Quads
	case store.BatchRemoveGraph:
		r.kind = recRemoveGraph
		r.graph = b.Graph
	case store.BatchClear:
		r.kind = recClear
	default:
		return fmt.Errorf("wal: unknown batch kind %d", b.Kind)
	}
	if err := m.log.append(&r); err != nil {
		return err
	}
	m.maybeAutoCheckpoint()
	return nil
}

// onRelease is the ontology release hook: journal the delta span so the
// release log is reconstructible.
func (m *Manager) onRelease(sp core.DeltaSpan) error {
	return m.log.append(&record{kind: recRelease, gen: sp.To, span: sp})
}

// maybeAutoCheckpoint fires a background checkpoint when enough WAL bytes
// accumulated since the last one. It runs on the write path (under the
// store mutex), so the checkpoint itself is handed to a goroutine; the
// single-flight guard keeps concurrent triggers from stacking.
func (m *Manager) maybeAutoCheckpoint() {
	if m.opts.CheckpointEveryBytes <= 0 || m.closed.Load() {
		return
	}
	_, bytes, _ := m.log.counters()
	m.statMu.Lock()
	due := int64(bytes-m.logBytesAtCkpt) >= m.opts.CheckpointEveryBytes
	m.statMu.Unlock()
	if !due || !m.ckptRunning.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer m.ckptRunning.Store(false)
		if m.closed.Load() {
			return
		}
		if _, err := m.checkpoint(); err != nil {
			m.statMu.Lock()
			m.checkpointError = err.Error()
			m.statMu.Unlock()
		}
	}()
}

// CheckpointInfo reports one written checkpoint.
type CheckpointInfo struct {
	Generation      uint64        `json:"generation"`
	Quads           int           `json:"quads"`
	Bytes           int64         `json:"bytes"`
	Duration        time.Duration `json:"durationNs"`
	SegmentsPruned  int           `json:"segmentsPruned"`
	CheckpointsKept int           `json:"checkpointsKept"`

	// FormatVersion is the checkpoint file format written (always 2 now;
	// version 1 files remain readable).
	FormatVersion int `json:"formatVersion"`
	// CompactionEpoch is the dictionary compaction epoch recorded in the
	// checkpoint (bumped when this checkpoint reclaimed IDs).
	CompactionEpoch uint64 `json:"dictCompactionEpoch"`
	// DictIDsReclaimed counts orphaned TermIDs this checkpoint dropped; 0
	// when the dictionary was already dense or compaction is disabled.
	DictIDsReclaimed int `json:"dictIDsReclaimed"`
	// DictRemapBytes is the encoded size of the old→new remap section.
	DictRemapBytes int `json:"dictRemapBytes,omitempty"`
}

// Checkpoint serializes a pinned snapshot of the current state to a fresh
// checkpoint file, rotates the WAL and prunes segments and checkpoints the
// new one supersedes. It never blocks readers — the snapshot is immutable —
// and writers only contend on the brief segment swap; they keep appending
// (and fsyncing per policy) while the checkpoint streams out.
func (m *Manager) Checkpoint() (CheckpointInfo, error) {
	return m.checkpoint()
}

func (m *Manager) checkpoint() (CheckpointInfo, error) {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	start := time.Now()

	// Pin the state: snapshot first, then the dictionary table (which then
	// covers every TermID the snapshot references) and the delta log.
	sn := m.st.Snapshot()
	terms := sn.Dict().Terms()
	var spans []core.DeltaSpan
	for _, sp := range m.ontology.DeltaLog() {
		if sp.To <= sn.Generation() {
			spans = append(spans, sp)
		}
	}
	p := snapshotPayload(sn, terms, spans)
	if !m.opts.DisableDictCompaction {
		p.terms, p.graphs, p.dropped = compactDict(terms, p.graphs)
	}
	m.statMu.Lock()
	epoch := m.compactionEpoch
	m.statMu.Unlock()
	if len(p.dropped) > 0 {
		epoch++
	}
	p.epoch = epoch
	size, err := writeCheckpointFile(m.dir, p)
	if err != nil {
		return CheckpointInfo{}, err
	}
	info := CheckpointInfo{
		Generation: sn.Generation(), Quads: sn.Len(), Bytes: size, Duration: time.Since(start),
		FormatVersion: 2, CompactionEpoch: epoch,
		DictIDsReclaimed: len(p.dropped), DictRemapBytes: droppedEncodedSize(p.dropped),
	}

	// The rotation base is raised inside rotate to the highest generation
	// already appended, so an in-flight commit's record can never be
	// stranded in a segment the recovery skip-rule drops.
	if err := m.log.rotate(m.st.Generation()); err != nil {
		return info, err
	}
	pruned, kept, err := m.prune(sn.Generation())
	if err != nil {
		return info, err
	}
	info.SegmentsPruned = pruned
	info.CheckpointsKept = kept

	_, bytes, _ := m.log.counters()
	m.statMu.Lock()
	m.lastCkptGen = info.Generation
	m.lastCkptTime = time.Now()
	m.lastCkptBytes = size
	m.ckptCount++
	m.logBytesAtCkpt = bytes
	m.checkpointError = ""
	m.compactionEpoch = epoch
	m.lastReclaimed = len(p.dropped)
	m.statMu.Unlock()
	walCheckpointsTotal.Inc()
	walCheckpointSeconds.Observe(time.Since(start))
	return info, nil
}

// prune deletes all but the two newest checkpoints, then deletes WAL
// segments fully covered by the *oldest retained* checkpoint. Pruning
// against the oldest survivor (not the checkpoint just written) keeps the
// WAL suffix the fallback checkpoint needs: if a crash corrupts the newest
// file, recovery restores the previous one and replays forward. A segment
// is only deleted when the next segment's base shows every record in it is
// at or before that bound.
func (m *Manager) prune(gen uint64) (segmentsPruned, checkpointsKept int, err error) {
	ckpts, err := listSeqFiles(m.dir, checkpointPrefix, checkpointSuffix)
	if err != nil {
		return 0, 0, err
	}
	const keep = 2
	for i := 0; i < len(ckpts)-keep; i++ {
		if err := os.Remove(ckpts[i].path); err != nil {
			return 0, 0, err
		}
	}
	kept := ckpts[max(0, len(ckpts)-keep):]
	checkpointsKept = len(kept)
	bound := gen
	if len(kept) > 0 && kept[0].seq < bound {
		bound = kept[0].seq
	}
	segs, err := listSeqFiles(m.dir, segmentPrefix, segmentSuffix)
	if err != nil {
		return 0, checkpointsKept, err
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].seq <= bound {
			if err := os.Remove(segs[i].path); err != nil {
				return segmentsPruned, checkpointsKept, err
			}
			segmentsPruned++
		}
	}
	return segmentsPruned, checkpointsKept, syncDir(m.dir)
}

// Sync forces an fsync of the open WAL segment regardless of policy.
func (m *Manager) Sync() error { return m.log.sync() }

// Close writes a final checkpoint, detaches the hooks and closes the log.
// Callers must quiesce writers first (e.g. after http.Server.Shutdown):
// batches published after the final checkpoint's pin are still journaled,
// but ones issued after Close returns would be rejected fail-stop.
func (m *Manager) Close() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	_, ckErr := m.checkpoint()
	m.st.SetCommitHook(nil)
	m.ontology.SetReleaseHook(nil)
	closeErr := m.log.close()
	lockErr := m.lock.release()
	if ckErr != nil {
		return ckErr
	}
	if closeErr != nil {
		return closeErr
	}
	return lockErr
}

// Abort closes the log files without a final checkpoint or fsync — the
// crash-simulation path used by fault-injection tests. The on-disk state is
// whatever the fsync policy happened to persist.
func (m *Manager) Abort() error {
	if !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	m.st.SetCommitHook(nil)
	m.ontology.SetReleaseHook(nil)
	closeErr := m.log.close()
	if err := m.lock.release(); err != nil && closeErr == nil {
		closeErr = err
	}
	return closeErr
}

// Stats is a point-in-time summary of the durability subsystem for the
// GET /api/durability endpoint and bdictl.
type Stats struct {
	Dir        string `json:"dir"`
	SyncPolicy string `json:"syncPolicy"`

	RecordsAppended uint64 `json:"recordsAppended"`
	BytesAppended   uint64 `json:"bytesAppended"`
	Fsyncs          uint64 `json:"fsyncs"`

	// LogError reports a latched fail-stop condition: a write or fsync
	// failed, every subsequent mutation is being rejected, and the process
	// should be restarted (recovery replays the intact prefix). Empty in
	// healthy operation.
	LogError string `json:"logError,omitempty"`

	Segments     int   `json:"segments"`
	SegmentBytes int64 `json:"segmentBytes"`
	Checkpoints  int   `json:"checkpoints"`

	LastCheckpointGeneration uint64 `json:"lastCheckpointGeneration"`
	LastCheckpointUnixMilli  int64  `json:"lastCheckpointUnixMilli,omitempty"`
	LastCheckpointBytes      int64  `json:"lastCheckpointBytes,omitempty"`
	CheckpointsWritten       uint64 `json:"checkpointsWritten"`
	CheckpointError          string `json:"checkpointError,omitempty"`

	// DictCompactionEpoch counts dictionary compactions over the data dir's
	// lifetime; LastDictIDsReclaimed is the orphaned-TermID count reclaimed
	// by the most recent checkpoint.
	DictCompactionEpoch  uint64 `json:"dictCompactionEpoch"`
	LastDictIDsReclaimed int    `json:"lastDictIDsReclaimed,omitempty"`

	StoreGeneration uint64 `json:"storeGeneration"`
	StoreQuads      int    `json:"storeQuads"`

	Recovery RecoveryInfo `json:"recovery"`
}

// Stats summarizes the manager's current state.
func (m *Manager) Stats() Stats {
	records, bytes, fsyncs := m.log.counters()
	st := Stats{
		Dir:             m.dir,
		SyncPolicy:      string(m.opts.Sync),
		RecordsAppended: records,
		BytesAppended:   bytes,
		Fsyncs:          fsyncs,
		StoreGeneration: m.st.Generation(),
		StoreQuads:      m.st.Len(),
		Recovery:        m.recovery,
	}
	if err := m.log.failure(); err != nil {
		st.LogError = err.Error()
	}
	if segs, err := listSeqFiles(m.dir, segmentPrefix, segmentSuffix); err == nil {
		st.Segments = len(segs)
		for _, s := range segs {
			if fi, err := os.Stat(s.path); err == nil {
				st.SegmentBytes += fi.Size()
			}
		}
	}
	if ckpts, err := listSeqFiles(m.dir, checkpointPrefix, checkpointSuffix); err == nil {
		st.Checkpoints = len(ckpts)
	}
	m.statMu.Lock()
	st.LastCheckpointGeneration = m.lastCkptGen
	if !m.lastCkptTime.IsZero() {
		st.LastCheckpointUnixMilli = m.lastCkptTime.UnixMilli()
	}
	st.LastCheckpointBytes = m.lastCkptBytes
	st.CheckpointsWritten = m.ckptCount
	st.CheckpointError = m.checkpointError
	st.DictCompactionEpoch = m.compactionEpoch
	st.LastDictIDsReclaimed = m.lastReclaimed
	m.statMu.Unlock()
	return st
}
