package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bdi/internal/core"
	"bdi/internal/store"
)

// RecoveryInfo reports what recovery found and did.
type RecoveryInfo struct {
	// CheckpointGeneration is the store generation of the checkpoint loaded
	// (0 when the data dir was fresh).
	CheckpointGeneration uint64 `json:"checkpointGeneration"`
	// CheckpointQuads is the number of quads restored from the checkpoint.
	CheckpointQuads int `json:"checkpointQuads"`
	// CheckpointsSkipped counts newer checkpoint files that failed
	// verification and were passed over for an older valid one.
	CheckpointsSkipped int `json:"checkpointsSkipped"`
	// SegmentsScanned is the number of WAL segment files read.
	SegmentsScanned int `json:"segmentsScanned"`
	// RecordsReplayed counts all records applied (batches plus releases).
	RecordsReplayed int `json:"recordsReplayed"`
	// BatchesReplayed counts the store mutation batches applied on top of
	// the checkpoint.
	BatchesReplayed int `json:"batchesReplayed"`
	// SpansRestored is the number of release-delta spans in the rebuilt log
	// (checkpoint plus WAL).
	SpansRestored int `json:"spansRestored"`
	// TornTail reports that the last segment ended in an incomplete or
	// corrupt record, which was truncated away.
	TornTail bool `json:"tornTail"`
	// TruncatedBytes is the size of the discarded torn tail.
	TruncatedBytes int64 `json:"truncatedBytes"`
	// FinalGeneration is the store generation after replay.
	FinalGeneration uint64 `json:"finalGeneration"`

	// CheckpointFormatVersion is the file format version of the loaded
	// checkpoint (1 for pre-compaction files, 2 for compaction-aware ones;
	// 0 when the data dir was fresh).
	CheckpointFormatVersion int `json:"checkpointFormatVersion,omitempty"`
	// DictCompactionEpoch is the dictionary compaction epoch recorded in the
	// loaded checkpoint; new checkpoints continue the count from here.
	DictCompactionEpoch uint64 `json:"dictCompactionEpoch"`
	// DictIDsReclaimed is the number of orphaned TermIDs the loaded
	// checkpoint's compaction pass dropped when it was written; the restored
	// dictionary is dense under the remapped IDs.
	DictIDsReclaimed int `json:"dictIDsReclaimed"`
	// DictRemapBytes is the encoded size of the checkpoint's old→new remap.
	DictRemapBytes int `json:"dictRemapBytes,omitempty"`
}

// errFreshDir reports a data dir with neither checkpoints nor segments.
var errFreshDir = errors.New("wal: fresh data dir")

// recoverDir rebuilds the store and delta-log spans recorded in dir: load
// the newest checkpoint that verifies, replay every WAL record past its
// generation, truncate torn tails. With truncate false the log files are
// left untouched (read-only inspection).
func recoverDir(dir string, truncate bool) (*store.Store, []core.DeltaSpan, RecoveryInfo, error) {
	var info RecoveryInfo
	ckpts, err := listSeqFiles(dir, checkpointPrefix, checkpointSuffix)
	if err != nil {
		return nil, nil, info, fmt.Errorf("wal: listing checkpoints: %w", err)
	}
	segs, err := listSeqFiles(dir, segmentPrefix, segmentSuffix)
	if err != nil {
		return nil, nil, info, fmt.Errorf("wal: listing segments: %w", err)
	}
	if len(ckpts) == 0 {
		if len(segs) == 0 {
			return nil, nil, info, errFreshDir
		}
		return nil, nil, info, fmt.Errorf("wal: %s has WAL segments but no checkpoint; cannot establish a replay base", dir)
	}

	// Load the newest checkpoint that verifies; fall back to older ones (a
	// crash mid-checkpoint leaves the previous one intact, and the WAL is
	// only pruned past verified checkpoints, so older bases replay further).
	var ck *checkpointData
	var ckErr error
	for i := len(ckpts) - 1; i >= 0; i-- {
		ck, ckErr = readCheckpointFile(ckpts[i].path)
		if ckErr == nil {
			break
		}
		info.CheckpointsSkipped++
	}
	if ck == nil {
		return nil, nil, info, fmt.Errorf("wal: no valid checkpoint in %s: %w", dir, ckErr)
	}
	s, err := store.Restore(ck.dict, ck.generation, ck.graphs)
	if err != nil {
		return nil, nil, info, fmt.Errorf("wal: restoring checkpoint snapshot: %w", err)
	}
	info.CheckpointGeneration = ck.generation
	info.CheckpointQuads = ck.quads
	info.CheckpointFormatVersion = ck.version
	info.DictCompactionEpoch = ck.epoch
	info.DictIDsReclaimed = ck.reclaimed
	info.DictRemapBytes = ck.remapBytes

	// Seed the span log with the checkpoint's spans. Spans beyond the
	// checkpoint generation are dropped: their release records follow in the
	// WAL (a release that raced the checkpoint writer appears in both; the
	// generation guard during replay keeps exactly one copy).
	var spans []core.DeltaSpan
	for _, sp := range ck.spans {
		if sp.To <= ck.generation {
			spans = append(spans, sp)
		}
	}

	// Replay the segments in base order. A segment is skipped wholesale when
	// the next segment's base shows it is fully covered by the checkpoint.
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].seq <= ck.generation {
			continue
		}
		last := i == len(segs)-1
		spans, err = replaySegment(seg.path, s, ck.generation, spans, last, truncate, &info)
		if err != nil {
			return nil, nil, info, err
		}
	}
	info.SpansRestored = len(spans)
	info.FinalGeneration = s.Generation()
	return s, spans, info, nil
}

// replaySegment applies one segment's records onto s. Decode failures in the
// final segment are a torn tail: the file is truncated at the last good
// record (when truncate is set) and replay ends. Decode failures elsewhere
// are corruption beyond crash semantics and abort recovery.
func replaySegment(path string, s *store.Store, ckptGen uint64, spans []core.DeltaSpan, last, truncate bool, info *RecoveryInfo) ([]core.DeltaSpan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return spans, fmt.Errorf("wal: reading segment: %w", err)
	}
	info.SegmentsScanned++
	off := 0
	for off < len(data) {
		r, n, derr := decodeRecord(data[off:])
		if derr != nil {
			if !last {
				return spans, fmt.Errorf("wal: segment %s corrupt at offset %d (not the final segment; refusing to skip history): %v", filepath.Base(path), off, derr)
			}
			info.TornTail = true
			info.TruncatedBytes = int64(len(data) - off)
			if truncate {
				if err := os.Truncate(path, int64(off)); err != nil {
					return spans, fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(path), err)
				}
			}
			return spans, nil
		}
		spans, err = applyRecord(r, s, ckptGen, spans, info)
		if err != nil {
			return spans, err
		}
		off += n
	}
	return spans, nil
}

func applyRecord(r *record, s *store.Store, ckptGen uint64, spans []core.DeltaSpan, info *RecoveryInfo) ([]core.DeltaSpan, error) {
	cur := s.Generation()
	switch r.kind {
	case recAddAll, recRemove, recRemoveGraph, recClear:
		if r.gen <= cur {
			return spans, nil // already covered by the checkpoint (or an earlier overlapping segment)
		}
		if r.gen != cur+1 {
			return spans, fmt.Errorf("wal: generation gap: store at %d, next record publishes %d", cur, r.gen)
		}
		if err := replayBatch(r, s); err != nil {
			return spans, err
		}
		if got := s.Generation(); got != r.gen {
			return spans, fmt.Errorf("wal: replaying %s record: store generation %d, want %d", r.kind, got, r.gen)
		}
		info.RecordsReplayed++
		info.BatchesReplayed++
	case recRelease:
		// The release's batch record precedes it in the log, so by now its
		// interval is fully applied; a span at or before the checkpoint
		// generation is already in the checkpoint's span section.
		if r.span.To <= ckptGen || r.span.To > s.Generation() {
			return spans, nil
		}
		spans = append(spans, r.span)
		info.RecordsReplayed++
	}
	return spans, nil
}

// replayBatch applies one store mutation batch through the ordinary batch
// API. Insertion replay re-interns every term in its original order, so the
// rebuilt dictionary assigns byte-identical TermIDs.
func replayBatch(r *record, s *store.Store) error {
	switch r.kind {
	case recAddAll:
		added, err := s.AddAll(r.quads)
		if err != nil {
			return fmt.Errorf("wal: replaying add batch: %w", err)
		}
		if added != len(r.quads) {
			return fmt.Errorf("wal: replaying add batch: %d of %d quads were duplicates", len(r.quads)-added, len(r.quads))
		}
	case recRemove:
		for _, q := range r.quads {
			if !s.Remove(q) {
				return fmt.Errorf("wal: replaying remove: quad %v not present", q)
			}
		}
	case recRemoveGraph:
		if s.RemoveGraph(r.graph) == 0 {
			return fmt.Errorf("wal: replaying remove-graph: graph %q already empty", r.graph)
		}
	case recClear:
		s.Clear()
	}
	return nil
}

// removeStaleTemp deletes checkpoint temp files left by a crash mid-write.
func removeStaleTemp(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "checkpoint-") && strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
