package wal

import (
	"errors"
	"fmt"
	"os"

	"bdi/internal/core"
	"bdi/internal/store"
)

// This file is the shipping side of log-based replication: a primary's
// Manager exposes its on-disk WAL frames and checkpoints to replicas, which
// re-verify every frame's CRC and apply the records through the same
// generation-guarded replay path recovery uses. Appends land in the segment
// file strictly before the batch's snapshot is published (the commit hook
// runs under the writer mutex), so anything a reader of the primary can
// observe is already shippable — replication adds no work to the write path
// beyond the existing hook.

// Shipping errors, mapped to HTTP statuses by the replication layer.
var (
	// ErrShipBehind: the requested resume generation predates the retained
	// WAL window (segments were pruned past a checkpoint). The replica must
	// catch up from a checkpoint first.
	ErrShipBehind = errors.New("wal: resume generation predates the retained WAL window")
	// ErrShipAhead: the requested resume generation is ahead of everything
	// this log ever appended — the replica replicated writes this primary
	// has since lost (e.g. an unsynced tail torn off by a crash). The
	// replica must discard its state and resynchronize from a checkpoint.
	ErrShipAhead = errors.New("wal: resume generation is ahead of this log")
)

// Record is the exported view of one WAL record, decoded from a shipped
// frame. Batch records apply store mutations; release records carry the
// delta span of a journaled release (Release non-nil).
type Record struct {
	// Generation is the store generation the record publishes (for release
	// records, the To bound of the span).
	Generation uint64
	// Release is the journaled delta span of a release record, nil for
	// store mutation batches.
	Release *core.DeltaSpan

	rec *record
}

// Kind names the record kind for logs and diagnostics.
func (r Record) Kind() string { return r.rec.kind.String() }

// Apply replays a batch record onto s through the ordinary mutation API
// (release records are no-ops; apply their Release span to the ontology
// instead). The store must be at exactly Generation-1; callers enforce the
// guard so skipped duplicates and gaps are their decision, not a silent
// side effect.
func (r Record) Apply(s *store.Store) error {
	if r.Release != nil {
		return nil
	}
	return replayBatch(r.rec, s)
}

// DecodeFrame decodes one framed record from the front of b, re-verifying
// the frame CRC, and returns the record and the number of bytes consumed.
// Replicas call it on shipped bytes; an error means the frame was torn or
// corrupted in flight and the rest of the buffer must be discarded and
// refetched.
func DecodeFrame(b []byte) (Record, int, error) {
	rec, n, err := decodeRecord(b)
	if err != nil {
		return Record{}, 0, err
	}
	out := Record{Generation: rec.gen, rec: rec}
	if rec.kind == recRelease {
		sp := rec.span
		out.Release = &sp
	}
	return out, n, nil
}

// LastAppendedGeneration returns the highest generation present in the WAL
// or published by the store, whichever is larger (a commit hook may have
// appended the next generation's record just before publication).
func (m *Manager) LastAppendedGeneration() uint64 {
	m.log.mu.Lock()
	gen := m.log.lastGen
	m.log.mu.Unlock()
	if sg := m.st.Generation(); sg > gen {
		gen = sg
	}
	return gen
}

// AppendNotify returns a channel that is closed when the next record lands
// in a segment file. Long-poll tail followers block on it instead of
// spinning; re-arm by calling it again after a wake-up.
func (m *Manager) AppendNotify() <-chan struct{} { return m.log.appendNotify() }

// OldestShippableGeneration returns the generation base of the oldest
// retained WAL segment: every record with a generation strictly greater is
// still shippable. Replicas at or past this bound can stream; older ones
// must catch up from a checkpoint.
func (m *Manager) OldestShippableGeneration() (uint64, error) {
	segs, err := listSeqFiles(m.dir, segmentPrefix, segmentSuffix)
	if err != nil {
		return 0, err
	}
	if len(segs) == 0 {
		return m.st.Generation(), nil
	}
	return segs[0].seq, nil
}

// ShipFrames collects raw WAL frames (length+CRC framing intact, so the
// receiver re-verifies the same checksums) for records a replica at
// generation from still needs: batch records with Generation > from and
// release records with Generation >= from — a release span whose batch the
// replica already applied may not have reached it yet, and resending it is
// idempotent under the replica's span guard. Stops after roughly maxBytes
// (always finishing the current frame; 0 means a 4 MiB default). Returns
// the frames and the highest generation included (== from when the replica
// is caught up).
//
// An undecodable frame at the tail of the final segment is not an error:
// it is an append in flight (a plain file write is not atomic for
// concurrent readers), so shipping simply ends there and the next poll
// picks it up. The same condition in an earlier segment is real corruption
// and is reported.
func (m *Manager) ShipFrames(from uint64, maxBytes int) ([]byte, uint64, error) {
	if maxBytes <= 0 {
		maxBytes = 4 << 20
	}
	next := from
	if last := m.LastAppendedGeneration(); from > last {
		return nil, next, fmt.Errorf("%w: log ends at generation %d, resume asked for > %d", ErrShipAhead, last, from)
	}
	segs, err := listSeqFiles(m.dir, segmentPrefix, segmentSuffix)
	if err != nil {
		return nil, next, err
	}
	if len(segs) == 0 {
		return nil, next, nil
	}
	if from < segs[0].seq {
		return nil, next, fmt.Errorf("%w: oldest retained segment starts after generation %d, replica resumes at %d", ErrShipBehind, segs[0].seq, from)
	}
	var frames []byte
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].seq <= from {
			continue // fully covered by the replica already
		}
		data, rerr := os.ReadFile(seg.path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				// Pruned between listing and reading. Any records the replica
				// still needed from it are gone; the replica's generation
				// guard will detect the gap and fall back to a checkpoint.
				continue
			}
			return frames, next, fmt.Errorf("wal: reading segment for shipping: %w", rerr)
		}
		off := 0
		for off < len(data) {
			rec, n, derr := decodeRecord(data[off:])
			if derr != nil {
				if i == len(segs)-1 {
					return frames, next, nil // in-flight append; ship what we have
				}
				return frames, next, fmt.Errorf("wal: segment %s corrupt at offset %d: %v", seg.path, off, derr)
			}
			ship := rec.gen > from
			if rec.kind == recRelease {
				ship = rec.gen >= from
			}
			if ship {
				frames = append(frames, data[off:off+n]...)
				if rec.gen > next {
					next = rec.gen
				}
				if len(frames) >= maxBytes {
					return frames, next, nil
				}
			}
			off += n
		}
	}
	return frames, next, nil
}

// LatestCheckpoint returns the path and generation of the newest checkpoint
// file in the data dir. Every durable dir has at least one (a fresh Open
// writes it), so a replica can always bootstrap.
func (m *Manager) LatestCheckpoint() (string, uint64, error) {
	ckpts, err := listSeqFiles(m.dir, checkpointPrefix, checkpointSuffix)
	if err != nil {
		return "", 0, err
	}
	if len(ckpts) == 0 {
		return "", 0, fmt.Errorf("wal: no checkpoint in %s", m.dir)
	}
	last := ckpts[len(ckpts)-1]
	return last.path, last.seq, nil
}

// RestoreCheckpoint rebuilds an ontology from checkpoint bytes (as shipped
// by a primary's replication endpoint): the trailing CRC is verified, the
// dictionary is restored with byte-identical TermIDs, every index bucket is
// rebuilt pre-sorted, and the release-delta log is reseeded so warm
// rewriting caches invalidate incrementally from the restored generation
// on. The restored store generation is available via Store().Generation().
func RestoreCheckpoint(data []byte) (*core.Ontology, error) {
	ck, err := decodeCheckpoint(data)
	if err != nil {
		return nil, err
	}
	s, err := store.Restore(ck.dict, ck.generation, ck.graphs)
	if err != nil {
		return nil, fmt.Errorf("wal: restoring shipped checkpoint: %w", err)
	}
	var spans []core.DeltaSpan
	for _, sp := range ck.spans {
		if sp.To <= ck.generation {
			spans = append(spans, sp)
		}
	}
	return core.RestoreOntology(s, spans), nil
}
