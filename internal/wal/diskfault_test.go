package wal

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// Disk-error fault injection: the openSegmentFile seam swaps the segment
// file for a wrapper whose writes and fsyncs can be made to fail on demand,
// proving the fail-stop contract — a batch whose journaling fails is vetoed
// and rolled back before publication, the latch rejects every later append,
// Stats surfaces the condition, and recovery of the damaged directory lands
// on a consistent generation with no partial frame surviving.

type faultConfig struct {
	mu        sync.Mutex
	failWrite bool
	partial   int // bytes of the failing write that still reach the disk
	failSync  bool
	writes    int // injected write failures delivered
	syncs     int // injected fsync failures delivered
}

func (c *faultConfig) set(failWrite bool, partial int, failSync bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failWrite, c.partial, c.failSync = failWrite, partial, failSync
}

var errInjectedWrite = errors.New("injected write failure")
var errInjectedSync = errors.New("injected fsync failure")

type faultFile struct {
	real segFile
	cfg  *faultConfig
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.cfg.mu.Lock()
	defer f.cfg.mu.Unlock()
	if f.cfg.failWrite {
		f.cfg.writes++
		n := f.cfg.partial
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			_, _ = f.real.Write(p[:n]) // the torn prefix a dying disk leaves behind
		}
		return n, errInjectedWrite
	}
	return f.real.Write(p)
}

func (f *faultFile) Sync() error {
	f.cfg.mu.Lock()
	defer f.cfg.mu.Unlock()
	if f.cfg.failSync {
		f.cfg.syncs++
		return errInjectedSync
	}
	return f.real.Sync()
}

func (f *faultFile) Close() error { return f.real.Close() }

// installFaultFiles reroutes openSegmentFile through faultFile for the
// duration of the test. Not safe for parallel tests (package-global seam).
func installFaultFiles(t *testing.T) *faultConfig {
	t.Helper()
	cfg := &faultConfig{}
	orig := openSegmentFile
	openSegmentFile = func(path string) (segFile, error) {
		f, err := orig(path)
		if err != nil {
			return nil, err
		}
		return &faultFile{real: f, cfg: cfg}, nil
	}
	t.Cleanup(func() { openSegmentFile = orig })
	return cfg
}

// fault-free prologue shared by both tests: a few generations of real work.
func diskFaultPrologue(t *testing.T, m *Manager) {
	t.Helper()
	o := m.Ontology()
	for i := 0; i < 3; i++ {
		if err := sideConceptOp(i).run(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := sideReleaseOp(0, 1).run(o); err != nil {
		t.Fatal(err)
	}
}

// TestWALDiskFaultPartialWrite injects a write that persists only a torn
// prefix of the frame and then errors. The batch must be vetoed and rolled
// back (nothing published), the log must fail-stop, and recovery must
// truncate the torn bytes and land exactly on the pre-fault state.
func TestWALDiskFaultPartialWrite(t *testing.T) {
	cfg := installFaultFiles(t)
	dir := t.TempDir()
	m, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	diskFaultPrologue(t, m)
	o := m.Ontology()
	pre := o.Store().Snapshot()
	preDict := len(pre.Dict().Terms())

	cfg.set(true, 5, false) // 5 torn bytes, then the disk dies
	if err := sideConceptOp(50).run(o); err == nil {
		t.Fatal("AddAll succeeded although journaling its batch failed")
	} else if !errors.Is(err, errInjectedWrite) {
		t.Fatalf("AddAll error does not carry the injected failure: %v", err)
	}

	// Vetoed and rolled back: nothing published.
	if got := o.Store().Generation(); got != pre.Generation() {
		t.Fatalf("generation advanced to %d after a vetoed batch (pre-fault %d)", got, pre.Generation())
	}
	if got := len(o.Store().Snapshot().Quads()); got != len(pre.Quads()) {
		t.Fatalf("%d quads visible after a vetoed batch, want %d", got, len(pre.Quads()))
	}

	// The latch: surfaced in Stats, and every later append is rejected even
	// though the disk is healthy again.
	if st := m.Stats(); st.LogError == "" {
		t.Fatal("Stats().LogError empty after a write failure")
	} else if !strings.Contains(st.LogError, "injected write failure") {
		t.Fatalf("Stats().LogError = %q, want the injected failure", st.LogError)
	}
	cfg.set(false, 0, false)
	if err := sideConceptOp(51).run(o); err == nil {
		t.Fatal("append accepted after the log went fail-stop")
	} else if !strings.Contains(err.Error(), "fail-stop") {
		t.Fatalf("post-latch append error = %v, want a fail-stop rejection", err)
	}

	// Crash and recover: the torn 5-byte prefix must be truncated away and
	// the directory must replay to exactly the pre-fault state.
	_ = m.Abort() // returns the latched error; the crash path ignores it
	m2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("recovering the damaged dir: %v", err)
	}
	defer m2.Close()
	if !m2.Recovery().TornTail {
		t.Error("recovery did not report the torn tail")
	}
	assertStateParity(t, m2.Ontology(), pre, preDict, "after partial-write fault")

	// The recovered directory accepts writes again.
	if err := sideConceptOp(52).run(m2.Ontology()); err != nil {
		t.Fatalf("append on the recovered dir: %v", err)
	}
	if got, want := m2.Ontology().Store().Generation(), pre.Generation()+1; got != want {
		t.Fatalf("post-recovery generation %d, want %d", got, want)
	}
	if cfg.writes == 0 {
		t.Fatal("fault injector never fired")
	}
}

// TestWALDiskFaultFsyncFailure injects an fsync error under SyncAlways: the
// frame is fully on disk but durability is unknown, so the batch must still
// be vetoed (never acknowledged) and the log fail-stopped. Recovery may
// legitimately land on either side of the unacknowledged batch — the frame
// is complete, so a surviving page cache replays it; a true power loss may
// drop it — but never on a torn state.
func TestWALDiskFaultFsyncFailure(t *testing.T) {
	cfg := installFaultFiles(t)
	dir := t.TempDir()
	m, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	diskFaultPrologue(t, m)
	o := m.Ontology()
	pre := o.Store().Snapshot()

	cfg.set(false, 0, true)
	if err := sideConceptOp(60).run(o); err == nil {
		t.Fatal("AddAll succeeded although its fsync failed")
	} else if !errors.Is(err, errInjectedSync) {
		t.Fatalf("AddAll error does not carry the injected failure: %v", err)
	}
	if got := o.Store().Generation(); got != pre.Generation() {
		t.Fatalf("generation advanced to %d after a vetoed batch (pre-fault %d)", got, pre.Generation())
	}
	if st := m.Stats(); !strings.Contains(st.LogError, "injected fsync failure") {
		t.Fatalf("Stats().LogError = %q, want the injected fsync failure", st.LogError)
	}
	cfg.set(false, 0, false)
	if err := sideConceptOp(61).run(o); err == nil {
		t.Fatal("append accepted after the log went fail-stop")
	}

	_ = m.Abort()
	m2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("recovering the damaged dir: %v", err)
	}
	defer m2.Close()
	got := m2.Ontology().Store().Generation()
	switch got {
	case pre.Generation():
		// The unacknowledged frame did not survive — pre-fault state.
		assertStateParity(t, m2.Ontology(), pre, len(pre.Dict().Terms()), "after fsync fault (batch lost)")
	case pre.Generation() + 1:
		// The complete frame survived and replayed — also consistent: the
		// batch's quads are fully present, never a torn subset.
		rsn := m2.Ontology().Store().Snapshot()
		if want := len(pre.Quads()) + 5; len(rsn.Quads()) != want {
			t.Fatalf("recovered generation %d has %d quads, want %d (the full batch)", got, len(rsn.Quads()), want)
		}
	default:
		t.Fatalf("recovered generation %d, want %d or %d", got, pre.Generation(), pre.Generation()+1)
	}
	if cfg.syncs == 0 {
		t.Fatal("fault injector never fired")
	}
}
