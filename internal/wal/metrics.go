package wal

import "bdi/internal/obs"

// Durability metrics, process-wide across WAL managers (a process normally
// runs one). Per-manager state (fail-stop latch, segment counts, last
// checkpoint generation) is mirrored by the mdm /metrics handler from
// Manager.Stats instead, so the names stay disjoint.
var (
	walAppendsTotal = obs.NewCounter("bdi_wal_appends_total",
		"Records appended to the write-ahead log.")
	walAppendBytesTotal = obs.NewCounter("bdi_wal_append_bytes_total",
		"Encoded bytes appended to the write-ahead log.")
	walFsyncsTotal = obs.NewCounter("bdi_wal_fsyncs_total",
		"Segment fsyncs (SyncAlways per record, SyncBatch group commits, rotations).")
	walFsyncSeconds = obs.NewHistogram("bdi_wal_fsync_seconds",
		"Latency of segment fsyncs.")
	walCheckpointsTotal = obs.NewCounter("bdi_wal_checkpoints_total",
		"Checkpoints written (triggered or threshold-driven).")
	walCheckpointSeconds = obs.NewHistogram("bdi_wal_checkpoint_seconds",
		"Latency of whole checkpoints (snapshot pin through segment pruning).")
)
