// Package wal is the durability subsystem of the metadata management
// system: an append-only, checksummed write-ahead log whose records are
// exactly the store's atomic mutation batches plus release registrations,
// and a checkpoint writer that serializes a pinned immutable snapshot
// concurrently with live traffic. Recovery loads the latest valid
// checkpoint, replays the WAL tail through the ordinary batch API,
// truncates torn tails, and rebuilds the ontology's release-delta log so
// rewriting caches validate incrementally across the restart.
//
// # Consistency model
//
// The store invokes the Manager's commit hook while holding the writer
// mutex and strictly before publishing the batch's snapshot, so the WAL is
// a write-ahead journal in the literal sense: any state a reader (or a
// checkpoint) can observe has already been appended. Records carry the
// generation they publish; replay applies a record if and only if it is the
// next generation, which makes replay idempotent across overlapping
// segments and prefix-correct under torn tails. Fsync policy is the only
// durability knob: with -wal-sync=always every batch is on disk before it
// becomes visible, with batch a background flusher bounds the loss window,
// with off the OS page cache decides.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"bdi/internal/core"
	"bdi/internal/rdf"
)

// recordKind tags a WAL record payload. Values are part of the on-disk
// format and must never be renumbered.
type recordKind uint8

const (
	recAddAll recordKind = iota + 1
	recRemove
	recRemoveGraph
	recClear
	recRelease
)

func (k recordKind) String() string {
	switch k {
	case recAddAll:
		return "add-all"
	case recRemove:
		return "remove"
	case recRemoveGraph:
		return "remove-graph"
	case recClear:
		return "clear"
	case recRelease:
		return "release"
	default:
		return fmt.Sprintf("record(%d)", uint8(k))
	}
}

// record is one WAL entry. Batch records (recAddAll, recRemove,
// recRemoveGraph, recClear) carry the generation they publish; release
// records carry the delta span of the release they journal.
type record struct {
	kind  recordKind
	gen   uint64
	quads []rdf.Quad
	graph rdf.IRI
	span  core.DeltaSpan
}

// castagnoli is the CRC-32C table used for record and checkpoint checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is the per-record frame overhead: a little-endian uint32
// payload length followed by a uint32 CRC-32C of the payload.
const frameHeaderSize = 8

// maxRecordSize bounds a single record payload. A torn or corrupt length
// field would otherwise make recovery attempt an absurd allocation.
const maxRecordSize = 1 << 30

// appendRecord appends the framed encoding of r to dst.
func appendRecord(dst []byte, r *record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	payloadStart := len(dst)
	dst = append(dst, byte(r.kind))
	switch r.kind {
	case recAddAll, recRemove:
		dst = binary.AppendUvarint(dst, r.gen)
		dst = binary.AppendUvarint(dst, uint64(len(r.quads)))
		for _, q := range r.quads {
			dst = appendQuad(dst, q)
		}
	case recRemoveGraph:
		dst = binary.AppendUvarint(dst, r.gen)
		dst = appendString(dst, string(r.graph))
	case recClear:
		dst = binary.AppendUvarint(dst, r.gen)
	case recRelease:
		dst = appendSpan(dst, r.span)
	default:
		panic(fmt.Sprintf("wal: encoding unknown record kind %d", r.kind))
	}
	payload := dst[payloadStart:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, castagnoli))
	return dst
}

// decodeRecord decodes one framed record from the front of b, returning the
// record and the number of bytes consumed. An incomplete frame, a CRC
// mismatch or a malformed payload returns an error: the caller treats the
// position as the end of the valid log (torn tail).
func decodeRecord(b []byte) (*record, int, error) {
	if len(b) < frameHeaderSize {
		return nil, 0, fmt.Errorf("wal: record frame truncated (%d bytes)", len(b))
	}
	length := binary.LittleEndian.Uint32(b)
	sum := binary.LittleEndian.Uint32(b[4:])
	if length == 0 || length > maxRecordSize {
		return nil, 0, fmt.Errorf("wal: implausible record length %d", length)
	}
	if uint32(len(b)-frameHeaderSize) < length {
		return nil, 0, fmt.Errorf("wal: record payload truncated (%d of %d bytes)", len(b)-frameHeaderSize, length)
	}
	payload := b[frameHeaderSize : frameHeaderSize+int(length)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, fmt.Errorf("wal: record checksum mismatch")
	}
	r, err := decodePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return r, frameHeaderSize + int(length), nil
}

func decodePayload(p []byte) (*record, error) {
	if len(p) == 0 {
		return nil, fmt.Errorf("wal: empty record payload")
	}
	r := &record{kind: recordKind(p[0])}
	p = p[1:]
	var err error
	switch r.kind {
	case recAddAll, recRemove:
		var n uint64
		if r.gen, p, err = readUvarint(p); err != nil {
			return nil, err
		}
		if n, p, err = readUvarint(p); err != nil {
			return nil, err
		}
		r.quads = make([]rdf.Quad, 0, n)
		for i := uint64(0); i < n; i++ {
			var q rdf.Quad
			if q, p, err = decodeQuad(p); err != nil {
				return nil, err
			}
			r.quads = append(r.quads, q)
		}
	case recRemoveGraph:
		if r.gen, p, err = readUvarint(p); err != nil {
			return nil, err
		}
		var g string
		if g, p, err = readString(p); err != nil {
			return nil, err
		}
		r.graph = rdf.IRI(g)
	case recClear:
		if r.gen, p, err = readUvarint(p); err != nil {
			return nil, err
		}
	case recRelease:
		if r.span, p, err = decodeSpan(p); err != nil {
			return nil, err
		}
		r.gen = r.span.To
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", uint8(r.kind))
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("wal: %s record has %d trailing bytes", r.kind, len(p))
	}
	return r, nil
}

func appendQuad(dst []byte, q rdf.Quad) []byte {
	dst = appendString(dst, string(q.Graph))
	dst = rdf.AppendTerm(dst, q.Subject)
	dst = rdf.AppendTerm(dst, q.Predicate)
	return rdf.AppendTerm(dst, q.Object)
}

func decodeQuad(b []byte) (rdf.Quad, []byte, error) {
	var q rdf.Quad
	g, b, err := readString(b)
	if err != nil {
		return q, nil, err
	}
	q.Graph = rdf.IRI(g)
	if q.Subject, b, err = readTerm(b); err != nil {
		return q, nil, err
	}
	if q.Predicate, b, err = readTerm(b); err != nil {
		return q, nil, err
	}
	if q.Object, b, err = readTerm(b); err != nil {
		return q, nil, err
	}
	return q, b, nil
}

// appendSpan / decodeSpan serialize a release delta span. The same encoding
// is used inside checkpoints for the delta-log section.
func appendSpan(dst []byte, s core.DeltaSpan) []byte {
	dst = binary.AppendUvarint(dst, s.From)
	dst = binary.AppendUvarint(dst, s.To)
	d := s.Delta
	dst = appendString(dst, string(d.Wrapper))
	dst = appendString(dst, string(d.Source))
	dst = binary.AppendUvarint(dst, uint64(d.Sequence))
	dst = appendIRIs(dst, d.Concepts)
	dst = appendIRIs(dst, d.Features)
	dst = appendIRIs(dst, d.Attributes)
	dst = binary.AppendUvarint(dst, uint64(len(d.Edges)))
	for _, e := range d.Edges {
		dst = appendString(dst, string(e[0]))
		dst = appendString(dst, string(e[1]))
	}
	return dst
}

func decodeSpan(b []byte) (core.DeltaSpan, []byte, error) {
	var s core.DeltaSpan
	var err error
	if s.From, b, err = readUvarint(b); err != nil {
		return s, nil, err
	}
	if s.To, b, err = readUvarint(b); err != nil {
		return s, nil, err
	}
	d := &core.ReleaseDelta{}
	var str string
	if str, b, err = readString(b); err != nil {
		return s, nil, err
	}
	d.Wrapper = rdf.IRI(str)
	if str, b, err = readString(b); err != nil {
		return s, nil, err
	}
	d.Source = rdf.IRI(str)
	var seq uint64
	if seq, b, err = readUvarint(b); err != nil {
		return s, nil, err
	}
	d.Sequence = int(seq)
	if d.Concepts, b, err = readIRIs(b); err != nil {
		return s, nil, err
	}
	if d.Features, b, err = readIRIs(b); err != nil {
		return s, nil, err
	}
	if d.Attributes, b, err = readIRIs(b); err != nil {
		return s, nil, err
	}
	var n uint64
	if n, b, err = readUvarint(b); err != nil {
		return s, nil, err
	}
	for i := uint64(0); i < n; i++ {
		var from, to string
		if from, b, err = readString(b); err != nil {
			return s, nil, err
		}
		if to, b, err = readString(b); err != nil {
			return s, nil, err
		}
		d.Edges = append(d.Edges, [2]rdf.IRI{rdf.IRI(from), rdf.IRI(to)})
	}
	s.Delta = d
	return s, b, nil
}

func appendIRIs(dst []byte, iris []rdf.IRI) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(iris)))
	for _, iri := range iris {
		dst = appendString(dst, string(iri))
	}
	return dst
}

func readIRIs(b []byte) ([]rdf.IRI, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	var out []rdf.IRI
	for i := uint64(0); i < n; i++ {
		var s string
		if s, b, err = readString(b); err != nil {
			return nil, nil, err
		}
		out = append(out, rdf.IRI(s))
	}
	return out, b, nil
}

// appendString / readString delegate to the rdf codec's string primitive so
// the durability files have exactly one definition of the wire format.
func appendString(dst []byte, s string) []byte { return rdf.AppendString(dst, s) }

func readString(b []byte) (string, []byte, error) {
	s, n, err := rdf.DecodeString(b)
	if err != nil {
		return "", nil, err
	}
	return s, b[n:], nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wal: bad uvarint")
	}
	return v, b[n:], nil
}

func readTerm(b []byte) (rdf.Term, []byte, error) {
	t, n, err := rdf.DecodeTerm(b)
	if err != nil {
		return nil, nil, err
	}
	return t, b[n:], nil
}
