package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"bdi/internal/core"
	"bdi/internal/rdf"
	"bdi/internal/store"
)

// Checkpoint file format, version 2 (all integers uvarint unless noted):
//
//	magic    "BDIWCKP2" (8 bytes)
//	epoch    dictionary compaction epoch (increments whenever a checkpoint
//	         reclaims at least one TermID)
//	origLen  dictionary size before compaction
//	ndrop    TermIDs reclaimed by compaction; then ndrop deltas encoding the
//	         ascending list of dropped *old* IDs (first delta is absolute).
//	         The old→new remap is implied: newID = oldID − |dropped ≤ oldID|.
//	gen      store generation the snapshot was pinned at
//	nterms   compacted dictionary size (origLen − ndrop); then nterms terms
//	         (rdf codec) in TermID order
//	ngraphs  non-empty graphs; per graph: nquads, then nquads × 4 TermIDs
//	nspans   release-delta log entries (same encoding as WAL release records)
//	crc      uint32 LE CRC-32C of everything above
//
// Version 1 ("BDIWCKP1") is the same layout without the epoch/origLen/drop
// header; the decoder accepts both, so pre-compaction data dirs recover
// unchanged (and the next checkpoint rewrites them as v2).
//
// A checkpoint is self-contained: the dictionary table restores every
// TermID at its (possibly remapped) value with sort keys regenerated from
// the term values, the graph sections are the store's pre-sorted buckets
// dumped in bulk (store.Restore rebuilds every index with plain appends),
// and the span section reseeds the ontology's release-delta log. Sort keys
// derive from term bytes, never from TermIDs, so the dense remap leaves the
// serialized bucket order untouched.

var (
	checkpointMagicV1 = []byte("BDIWCKP1")
	checkpointMagicV2 = []byte("BDIWCKP2")
)

// checkpointData is a decoded checkpoint.
type checkpointData struct {
	version     int    // format version (1 or 2)
	generation  uint64 // store generation of the pinned snapshot
	epoch       uint64 // dict compaction epoch (0 for v1)
	origDictLen int    // dictionary size before compaction (== dict len for v1)
	reclaimed   int    // TermIDs dropped by the writer's compaction pass
	remapBytes  int    // encoded size of the dropped-ID section
	dict        *rdf.Dict
	graphs      [][]store.QuadID
	spans       []core.DeltaSpan
	quads       int
}

// checkpointPayload is what the writer serializes: the (possibly compacted)
// dictionary table and remapped graph sections plus the compaction header.
type checkpointPayload struct {
	generation  uint64
	epoch       uint64
	origDictLen int
	dropped     []rdf.TermID // ascending old TermIDs reclaimed by compaction
	terms       []rdf.Term
	graphs      [][]store.QuadID
	spans       []core.DeltaSpan
}

// snapshotPayload assembles an uncompacted payload straight from a pinned
// snapshot (tests, benchmarks and the DisableDictCompaction path).
func snapshotPayload(sn store.Snapshot, terms []rdf.Term, spans []core.DeltaSpan) checkpointPayload {
	return checkpointPayload{
		generation:  sn.Generation(),
		origDictLen: len(terms),
		terms:       terms,
		graphs:      sn.ExportGraphIDs(),
		spans:       spans,
	}
}

// compactDict computes the TermIDs live in the exported graphs and, when the
// dictionary holds orphaned entries (terms no longer referenced by any quad —
// RemoveGraph and wrapper deregistration leave these behind, since the
// dictionary itself is append-only), rewrites the term table and every QuadID
// under the dense order-preserving remap newID = oldID − |dropped ≤ oldID|.
// Sort keys are term-key-based, so bucket order survives the remap and the
// rewritten graph sections stay valid Restore input. Returns the inputs
// unchanged (nil dropped list) when nothing is reclaimable.
func compactDict(terms []rdf.Term, graphs [][]store.QuadID) ([]rdf.Term, [][]store.QuadID, []rdf.TermID) {
	live := make([]bool, len(terms)+1)
	for _, ids := range graphs {
		for _, id := range ids {
			live[id.Graph] = true
			live[id.Subject] = true
			live[id.Predicate] = true
			live[id.Object] = true
		}
	}
	var dropped []rdf.TermID
	for id := 1; id <= len(terms); id++ {
		if !live[id] {
			dropped = append(dropped, rdf.TermID(id))
		}
	}
	if len(dropped) == 0 {
		return terms, graphs, nil
	}
	remap := make([]rdf.TermID, len(terms)+1)
	shift := rdf.TermID(0)
	di := 0
	for id := rdf.TermID(1); id <= rdf.TermID(len(terms)); id++ {
		if di < len(dropped) && dropped[di] == id {
			shift++
			di++
			continue
		}
		remap[id] = id - shift
	}
	newTerms := make([]rdf.Term, 0, len(terms)-len(dropped))
	for i, t := range terms {
		if remap[i+1] != 0 {
			newTerms = append(newTerms, t)
		}
	}
	newGraphs := make([][]store.QuadID, len(graphs))
	for gi, ids := range graphs {
		out := make([]store.QuadID, len(ids))
		for i, id := range ids {
			out[i] = store.QuadID{
				Graph:     remap[id.Graph],
				Subject:   remap[id.Subject],
				Predicate: remap[id.Predicate],
				Object:    remap[id.Object],
			}
		}
		newGraphs[gi] = out
	}
	return newTerms, newGraphs, dropped
}

// droppedEncodedSize returns the byte size of the delta-encoded dropped-ID
// section (the on-disk remap), for checkpoint and recovery stats.
func droppedEncodedSize(dropped []rdf.TermID) int {
	n := 0
	prev := rdf.TermID(0)
	var scratch [binary.MaxVarintLen64]byte
	for _, id := range dropped {
		n += binary.PutUvarint(scratch[:], uint64(id-prev))
		prev = id
	}
	return n
}

// crcWriter tees writes into a running CRC-32C so the checkpoint can be
// streamed without materializing it.
type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.sum = crc32.Update(cw.sum, castagnoli, p[:n])
	return n, err
}

// writeCheckpointTo streams the checkpoint body plus the trailing CRC to w.
// Memory stays O(buffer): sections are encoded into a small scratch slice
// and flushed through a buffered writer, never concatenated (the only
// O(store) transient is the per-graph QuadID dump in the payload, 16 bytes
// per quad).
func writeCheckpointTo(w io.Writer, p checkpointPayload) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw}
	scratch := make([]byte, 0, 1<<12)
	emit := func() error {
		_, err := cw.Write(scratch)
		scratch = scratch[:0]
		return err
	}
	scratch = append(scratch, checkpointMagicV2...)
	scratch = binary.AppendUvarint(scratch, p.epoch)
	scratch = binary.AppendUvarint(scratch, uint64(p.origDictLen))
	scratch = binary.AppendUvarint(scratch, uint64(len(p.dropped)))
	prev := rdf.TermID(0)
	for _, id := range p.dropped {
		scratch = binary.AppendUvarint(scratch, uint64(id-prev))
		prev = id
		if len(scratch) >= 1<<15 {
			if err := emit(); err != nil {
				return err
			}
		}
	}
	scratch = binary.AppendUvarint(scratch, p.generation)
	scratch = binary.AppendUvarint(scratch, uint64(len(p.terms)))
	if err := emit(); err != nil {
		return err
	}
	for _, t := range p.terms {
		scratch = rdf.AppendTerm(scratch, t)
		if len(scratch) >= 1<<15 {
			if err := emit(); err != nil {
				return err
			}
		}
	}
	scratch = binary.AppendUvarint(scratch, uint64(len(p.graphs)))
	for _, ids := range p.graphs {
		scratch = binary.AppendUvarint(scratch, uint64(len(ids)))
		for _, id := range ids {
			scratch = binary.AppendUvarint(scratch, uint64(id.Graph))
			scratch = binary.AppendUvarint(scratch, uint64(id.Subject))
			scratch = binary.AppendUvarint(scratch, uint64(id.Predicate))
			scratch = binary.AppendUvarint(scratch, uint64(id.Object))
			if len(scratch) >= 1<<15 {
				if err := emit(); err != nil {
					return err
				}
			}
		}
	}
	scratch = binary.AppendUvarint(scratch, uint64(len(p.spans)))
	for _, sp := range p.spans {
		scratch = appendSpan(scratch, sp)
		if len(scratch) >= 1<<15 {
			if err := emit(); err != nil {
				return err
			}
		}
	}
	if err := emit(); err != nil {
		return err
	}
	// The trailing CRC covers everything before it, so it bypasses cw.
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.sum)
	if _, err := bw.Write(tail[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// encodeCheckpoint materializes an uncompacted checkpoint in memory (tests
// and benchmarks; the file path streams via writeCheckpointTo).
func encodeCheckpoint(sn store.Snapshot, terms []rdf.Term, spans []core.DeltaSpan) []byte {
	var buf bytes.Buffer
	if err := writeCheckpointTo(&buf, snapshotPayload(sn, terms, spans)); err != nil {
		panic(fmt.Sprintf("wal: encoding checkpoint to memory: %v", err))
	}
	return buf.Bytes()
}

// decodeCheckpoint parses and verifies a checkpoint file's contents. Both
// format versions are accepted; v1 files decode with epoch 0 and an empty
// remap.
func decodeCheckpoint(data []byte) (*checkpointData, error) {
	if len(data) < len(checkpointMagicV2)+4 {
		return nil, fmt.Errorf("wal: checkpoint too short (%d bytes)", len(data))
	}
	body, sumBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(sumBytes) {
		return nil, fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	ck := &checkpointData{}
	switch {
	case bytes.HasPrefix(body, checkpointMagicV2):
		ck.version = 2
	case bytes.HasPrefix(body, checkpointMagicV1):
		ck.version = 1
	default:
		return nil, fmt.Errorf("wal: bad checkpoint magic")
	}
	b := body[len(checkpointMagicV2):]
	var err error
	if ck.version == 2 {
		if ck.epoch, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		var origLen, ndrop uint64
		if origLen, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if ndrop, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		if ndrop > origLen {
			return nil, fmt.Errorf("wal: checkpoint drops %d of %d TermIDs", ndrop, origLen)
		}
		ck.origDictLen = int(origLen)
		ck.reclaimed = int(ndrop)
		before := len(b)
		prev := rdf.TermID(0)
		for i := uint64(0); i < ndrop; i++ {
			var delta uint64
			if delta, b, err = readUvarint(b); err != nil {
				return nil, err
			}
			if delta == 0 {
				return nil, fmt.Errorf("wal: checkpoint remap not strictly ascending")
			}
			prev += rdf.TermID(delta)
		}
		if uint64(prev) > origLen {
			return nil, fmt.Errorf("wal: checkpoint remap drops TermID %d beyond dictionary size %d", prev, origLen)
		}
		ck.remapBytes = before - len(b)
	}
	if ck.generation, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	var nterms uint64
	if nterms, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	if ck.version == 2 && int(nterms) != ck.origDictLen-ck.reclaimed {
		return nil, fmt.Errorf("wal: checkpoint has %d terms, header implies %d", nterms, ck.origDictLen-ck.reclaimed)
	}
	terms := make([]rdf.Term, 0, nterms)
	for i := uint64(0); i < nterms; i++ {
		var t rdf.Term
		if t, b, err = readTerm(b); err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if ck.version == 1 {
		ck.origDictLen = len(terms)
	}
	if ck.dict, err = rdf.NewDictFromTerms(terms); err != nil {
		return nil, fmt.Errorf("wal: rebuilding checkpoint dictionary: %w", err)
	}
	var ngraphs uint64
	if ngraphs, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	for g := uint64(0); g < ngraphs; g++ {
		var nquads uint64
		if nquads, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		ids := make([]store.QuadID, 0, nquads)
		for i := uint64(0); i < nquads; i++ {
			var id store.QuadID
			if id, b, err = readQuadID(b); err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		ck.graphs = append(ck.graphs, ids)
		ck.quads += len(ids)
	}
	var nspans uint64
	if nspans, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	for i := uint64(0); i < nspans; i++ {
		var sp core.DeltaSpan
		if sp, b, err = decodeSpan(b); err != nil {
			return nil, err
		}
		ck.spans = append(ck.spans, sp)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wal: checkpoint has %d trailing bytes", len(b))
	}
	return ck, nil
}

func readQuadID(b []byte) (store.QuadID, []byte, error) {
	var id store.QuadID
	var v uint64
	var err error
	if v, b, err = readUvarint(b); err != nil {
		return id, nil, err
	}
	id.Graph = rdf.TermID(v)
	if v, b, err = readUvarint(b); err != nil {
		return id, nil, err
	}
	id.Subject = rdf.TermID(v)
	if v, b, err = readUvarint(b); err != nil {
		return id, nil, err
	}
	id.Predicate = rdf.TermID(v)
	if v, b, err = readUvarint(b); err != nil {
		return id, nil, err
	}
	id.Object = rdf.TermID(v)
	return id, b, nil
}

// writeCheckpointFile atomically writes a checkpoint payload: stream to a
// temp file, fsync, rename into place, fsync the directory. Returns the file
// size.
func writeCheckpointFile(dir string, p checkpointPayload) (int64, error) {
	tmp, err := os.CreateTemp(dir, "checkpoint-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("wal: creating checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if err := writeCheckpointTo(tmp, p); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("wal: fsyncing checkpoint: %w", err)
	}
	size, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil {
		tmp.Close()
		return 0, fmt.Errorf("wal: sizing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("wal: closing checkpoint: %w", err)
	}
	final := filepath.Join(dir, checkpointName(p.generation))
	if err := os.Rename(tmpName, final); err != nil {
		return 0, fmt.Errorf("wal: installing checkpoint: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, fmt.Errorf("wal: fsyncing data dir: %w", err)
	}
	return size, nil
}

// readCheckpointFile loads and decodes one checkpoint file.
func readCheckpointFile(path string) (*checkpointData, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck, err := decodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return ck, nil
}
