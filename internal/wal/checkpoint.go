package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"bdi/internal/core"
	"bdi/internal/rdf"
	"bdi/internal/store"
)

// Checkpoint file format (all integers uvarint unless noted):
//
//	magic    "BDIWCKP1" (8 bytes)
//	gen      store generation the snapshot was pinned at
//	nterms   dictionary size; then nterms terms (rdf codec) in TermID order
//	ngraphs  non-empty graphs; per graph: nquads, then nquads × 4 TermIDs
//	nspans   release-delta log entries (same encoding as WAL release records)
//	crc      uint32 LE CRC-32C of everything above
//
// A checkpoint is self-contained: the dictionary table restores every
// TermID at its original value with sort keys regenerated from the term
// values, the graph sections are the store's pre-sorted buckets dumped in
// bulk (store.Restore rebuilds every index with plain appends), and the
// span section reseeds the ontology's release-delta log.

var checkpointMagic = []byte("BDIWCKP1")

// checkpointData is a decoded checkpoint.
type checkpointData struct {
	generation uint64
	dict       *rdf.Dict
	graphs     [][]store.QuadID
	spans      []core.DeltaSpan
	quads      int
}

// crcWriter tees writes into a running CRC-32C so the checkpoint can be
// streamed without materializing it.
type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.sum = crc32.Update(cw.sum, castagnoli, p[:n])
	return n, err
}

// writeCheckpointTo streams the checkpoint body plus the trailing CRC to w.
// Memory stays O(buffer): sections are encoded into a small scratch slice
// and flushed through a buffered writer, never concatenated (the only
// O(store) transient is the per-graph QuadID dump from ExportGraphIDs,
// 16 bytes per quad).
func writeCheckpointTo(w io.Writer, sn store.Snapshot, terms []rdf.Term, spans []core.DeltaSpan) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw}
	scratch := make([]byte, 0, 1<<12)
	emit := func() error {
		_, err := cw.Write(scratch)
		scratch = scratch[:0]
		return err
	}
	scratch = append(scratch, checkpointMagic...)
	scratch = binary.AppendUvarint(scratch, sn.Generation())
	scratch = binary.AppendUvarint(scratch, uint64(len(terms)))
	if err := emit(); err != nil {
		return err
	}
	for _, t := range terms {
		scratch = rdf.AppendTerm(scratch, t)
		if len(scratch) >= 1<<15 {
			if err := emit(); err != nil {
				return err
			}
		}
	}
	graphs := sn.ExportGraphIDs()
	scratch = binary.AppendUvarint(scratch, uint64(len(graphs)))
	for _, ids := range graphs {
		scratch = binary.AppendUvarint(scratch, uint64(len(ids)))
		for _, id := range ids {
			scratch = binary.AppendUvarint(scratch, uint64(id.Graph))
			scratch = binary.AppendUvarint(scratch, uint64(id.Subject))
			scratch = binary.AppendUvarint(scratch, uint64(id.Predicate))
			scratch = binary.AppendUvarint(scratch, uint64(id.Object))
			if len(scratch) >= 1<<15 {
				if err := emit(); err != nil {
					return err
				}
			}
		}
	}
	scratch = binary.AppendUvarint(scratch, uint64(len(spans)))
	for _, sp := range spans {
		scratch = appendSpan(scratch, sp)
		if len(scratch) >= 1<<15 {
			if err := emit(); err != nil {
				return err
			}
		}
	}
	if err := emit(); err != nil {
		return err
	}
	// The trailing CRC covers everything before it, so it bypasses cw.
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.sum)
	if _, err := bw.Write(tail[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// encodeCheckpoint materializes a checkpoint in memory (tests and
// benchmarks; the file path streams via writeCheckpointTo).
func encodeCheckpoint(sn store.Snapshot, terms []rdf.Term, spans []core.DeltaSpan) []byte {
	var buf bytes.Buffer
	if err := writeCheckpointTo(&buf, sn, terms, spans); err != nil {
		panic(fmt.Sprintf("wal: encoding checkpoint to memory: %v", err))
	}
	return buf.Bytes()
}

// decodeCheckpoint parses and verifies a checkpoint file's contents.
func decodeCheckpoint(data []byte) (*checkpointData, error) {
	if len(data) < len(checkpointMagic)+4 {
		return nil, fmt.Errorf("wal: checkpoint too short (%d bytes)", len(data))
	}
	body, sumBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(sumBytes) {
		return nil, fmt.Errorf("wal: checkpoint checksum mismatch")
	}
	if string(body[:len(checkpointMagic)]) != string(checkpointMagic) {
		return nil, fmt.Errorf("wal: bad checkpoint magic")
	}
	b := body[len(checkpointMagic):]
	ck := &checkpointData{}
	var err error
	if ck.generation, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	var nterms uint64
	if nterms, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	terms := make([]rdf.Term, 0, nterms)
	for i := uint64(0); i < nterms; i++ {
		var t rdf.Term
		if t, b, err = readTerm(b); err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if ck.dict, err = rdf.NewDictFromTerms(terms); err != nil {
		return nil, fmt.Errorf("wal: rebuilding checkpoint dictionary: %w", err)
	}
	var ngraphs uint64
	if ngraphs, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	for g := uint64(0); g < ngraphs; g++ {
		var nquads uint64
		if nquads, b, err = readUvarint(b); err != nil {
			return nil, err
		}
		ids := make([]store.QuadID, 0, nquads)
		for i := uint64(0); i < nquads; i++ {
			var id store.QuadID
			if id, b, err = readQuadID(b); err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		ck.graphs = append(ck.graphs, ids)
		ck.quads += len(ids)
	}
	var nspans uint64
	if nspans, b, err = readUvarint(b); err != nil {
		return nil, err
	}
	for i := uint64(0); i < nspans; i++ {
		var sp core.DeltaSpan
		if sp, b, err = decodeSpan(b); err != nil {
			return nil, err
		}
		ck.spans = append(ck.spans, sp)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wal: checkpoint has %d trailing bytes", len(b))
	}
	return ck, nil
}

func readQuadID(b []byte) (store.QuadID, []byte, error) {
	var id store.QuadID
	var v uint64
	var err error
	if v, b, err = readUvarint(b); err != nil {
		return id, nil, err
	}
	id.Graph = rdf.TermID(v)
	if v, b, err = readUvarint(b); err != nil {
		return id, nil, err
	}
	id.Subject = rdf.TermID(v)
	if v, b, err = readUvarint(b); err != nil {
		return id, nil, err
	}
	id.Predicate = rdf.TermID(v)
	if v, b, err = readUvarint(b); err != nil {
		return id, nil, err
	}
	id.Object = rdf.TermID(v)
	return id, b, nil
}

// writeCheckpointFile atomically writes a checkpoint for the pinned
// snapshot: stream to a temp file, fsync, rename into place, fsync the
// directory. Returns the file size.
func writeCheckpointFile(dir string, sn store.Snapshot, terms []rdf.Term, spans []core.DeltaSpan) (int64, error) {
	tmp, err := os.CreateTemp(dir, "checkpoint-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("wal: creating checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if err := writeCheckpointTo(tmp, sn, terms, spans); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("wal: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("wal: fsyncing checkpoint: %w", err)
	}
	size, err := tmp.Seek(0, io.SeekCurrent)
	if err != nil {
		tmp.Close()
		return 0, fmt.Errorf("wal: sizing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("wal: closing checkpoint: %w", err)
	}
	final := filepath.Join(dir, checkpointName(sn.Generation()))
	if err := os.Rename(tmpName, final); err != nil {
		return 0, fmt.Errorf("wal: installing checkpoint: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, fmt.Errorf("wal: fsyncing data dir: %w", err)
	}
	return size, nil
}

// readCheckpointFile loads and decodes one checkpoint file.
func readCheckpointFile(path string) (*checkpointData, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck, err := decodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return ck, nil
}
