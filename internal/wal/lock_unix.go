//go:build unix

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// dirLock holds an advisory flock on the data dir's LOCK file for the
// manager's lifetime, so two processes can never journal into the same WAL
// (interleaved appends from two writers would corrupt the generation
// sequence beyond recovery). The kernel drops the lock automatically when
// the process dies, so a crash never leaves a stale lock behind.
type dirLock struct{ f *os.File }

func lockDir(dir string) (*dirLock, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: data dir %s is already in use by another process: %w", dir, err)
	}
	return &dirLock{f: f}, nil
}

func (l *dirLock) release() error {
	if l == nil || l.f == nil {
		return nil
	}
	flockErr := syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	closeErr := l.f.Close()
	l.f = nil
	if flockErr != nil {
		return flockErr
	}
	return closeErr
}
