package rdf

import (
	"strings"
	"testing"
)

func TestPrefixMapExpandCompact(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("sup", "http://www.essi.upc.edu/~snadal/BDIOntology/SUPERSEDE/")
	iri, ok := pm.Expand("sup:Monitor")
	if !ok {
		t.Fatal("expected expansion")
	}
	want := IRI("http://www.essi.upc.edu/~snadal/BDIOntology/SUPERSEDE/Monitor")
	if iri != want {
		t.Errorf("expanded to %v, want %v", iri, want)
	}
	if got := pm.Compact(want); got != "sup:Monitor" {
		t.Errorf("compacted to %q", got)
	}
}

func TestPrefixMapUnknownPrefix(t *testing.T) {
	pm := NewPrefixMap()
	iri, ok := pm.Expand("unknown:thing")
	if ok {
		t.Error("unknown prefix should not expand")
	}
	if iri != IRI("unknown:thing") {
		t.Errorf("unexpected %v", iri)
	}
	if _, ok := pm.Expand("http://already.absolute/x"); ok {
		t.Error("absolute IRI should not be treated as a CURIE")
	}
}

func TestPrefixMapRebindReplacesOld(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("x", "http://one/")
	pm.Bind("x", "http://two/")
	ns, _ := pm.Namespace("x")
	if ns != "http://two/" {
		t.Errorf("namespace = %q", ns)
	}
	if _, ok := pm.Prefix("http://one/"); ok {
		t.Error("old namespace binding should be removed")
	}
}

func TestDefaultPrefixesContainCoreVocabularies(t *testing.T) {
	pm := DefaultPrefixes()
	for _, p := range []string{"rdf", "rdfs", "owl", "xsd", "sc"} {
		if _, ok := pm.Namespace(p); !ok {
			t.Errorf("missing default prefix %q", p)
		}
	}
	if got := pm.Compact(RDFType); got != "rdf:type" {
		t.Errorf("rdf:type compacted to %q", got)
	}
}

func TestPrefixMapCompactTermAndClone(t *testing.T) {
	pm := DefaultPrefixes()
	if got := pm.CompactTerm(NewLiteral("x")); got != `"x"` {
		t.Errorf("literal compact = %q", got)
	}
	clone := pm.Clone()
	clone.Bind("zzz", "http://zzz/")
	if _, ok := pm.Namespace("zzz"); ok {
		t.Error("clone should not affect original")
	}
}

func TestTurtleHeader(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("g", "http://example.org/g/")
	header := pm.TurtleHeader()
	if !strings.Contains(header, "@prefix g: <http://example.org/g/> .") {
		t.Errorf("unexpected header %q", header)
	}
}

func TestPrefixesSorted(t *testing.T) {
	pm := NewPrefixMap()
	pm.Bind("b", "http://b/")
	pm.Bind("a", "http://a/")
	got := pm.Prefixes()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("prefixes not sorted: %v", got)
	}
}
