package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestIRIBasics(t *testing.T) {
	iri := NewIRI("http://example.org/ns#Monitor")
	if iri.Kind() != KindIRI {
		t.Fatalf("expected KindIRI, got %v", iri.Kind())
	}
	if iri.Value() != "http://example.org/ns#Monitor" {
		t.Errorf("unexpected value %q", iri.Value())
	}
	if iri.String() != "<http://example.org/ns#Monitor>" {
		t.Errorf("unexpected string %q", iri.String())
	}
	if iri.LocalName() != "Monitor" {
		t.Errorf("unexpected local name %q", iri.LocalName())
	}
	if iri.Namespace() != "http://example.org/ns#" {
		t.Errorf("unexpected namespace %q", iri.Namespace())
	}
	if !iri.Equal(NewIRI("http://example.org/ns#Monitor")) {
		t.Error("expected IRIs to be equal")
	}
	if iri.Equal(NewIRI("http://example.org/ns#Other")) {
		t.Error("expected IRIs to differ")
	}
}

func TestIRILocalNameSlashNamespace(t *testing.T) {
	iri := NewIRI("http://www.essi.upc.edu/~snadal/BDIOntology/Source/Wrapper/w1")
	if got := iri.LocalName(); got != "w1" {
		t.Errorf("LocalName = %q, want w1", got)
	}
}

func TestLiteralConstructors(t *testing.T) {
	cases := []struct {
		name     string
		lit      Literal
		datatype IRI
		lexical  string
	}{
		{"plain", NewLiteral("hello"), XSDString, "hello"},
		{"typed", NewTypedLiteral("42", XSDInteger), XSDInteger, "42"},
		{"integer", NewIntegerLiteral(42), XSDInteger, "42"},
		{"double", NewDoubleLiteral(0.75), XSDDouble, "0.75"},
		{"boolean", NewBooleanLiteral(true), XSDBoolean, "true"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.lit.Datatype != c.datatype {
				t.Errorf("datatype = %v, want %v", c.lit.Datatype, c.datatype)
			}
			if c.lit.Lexical != c.lexical {
				t.Errorf("lexical = %q, want %q", c.lit.Lexical, c.lexical)
			}
		})
	}
}

func TestLangLiteral(t *testing.T) {
	l := NewLangLiteral("hola", "es")
	if l.Lang != "es" {
		t.Errorf("lang = %q", l.Lang)
	}
	if !strings.HasSuffix(l.String(), "@es") {
		t.Errorf("serialization should end with @es: %q", l.String())
	}
}

func TestLiteralConversions(t *testing.T) {
	if v, ok := NewIntegerLiteral(7).Integer(); !ok || v != 7 {
		t.Errorf("Integer() = %v, %v", v, ok)
	}
	if v, ok := NewDoubleLiteral(0.5).Float(); !ok || v != 0.5 {
		t.Errorf("Float() = %v, %v", v, ok)
	}
	if v, ok := NewBooleanLiteral(true).Bool(); !ok || !v {
		t.Errorf("Bool() = %v, %v", v, ok)
	}
	if _, ok := NewLiteral("text").Integer(); ok {
		t.Error("string literal should not convert to integer")
	}
	if _, ok := NewLiteral("text").Bool(); ok {
		t.Error("string literal should not convert to bool")
	}
}

func TestLiteralEqualityNormalizesStringDatatype(t *testing.T) {
	a := Literal{Lexical: "x"}
	b := NewLiteral("x")
	if !a.Equal(b) {
		t.Error("empty datatype should equal xsd:string")
	}
}

func TestLiteralStringEscaping(t *testing.T) {
	l := NewLiteral("line1\nline2\t\"quoted\"")
	s := l.String()
	if !strings.Contains(s, `\n`) || !strings.Contains(s, `\t`) || !strings.Contains(s, `\"`) {
		t.Errorf("expected escapes in %q", s)
	}
	if UnescapeLiteral(`line1\nline2\t\"quoted\"`) != "line1\nline2\t\"quoted\"" {
		t.Error("unescape roundtrip failed")
	}
}

func TestBlankNodeAndVariable(t *testing.T) {
	b := NewBlankNode("b1")
	if b.Kind() != KindBlank || b.String() != "_:b1" {
		t.Errorf("unexpected blank node %v %q", b.Kind(), b.String())
	}
	v := NewVariable("x")
	if v.Kind() != KindVariable || v.String() != "?x" {
		t.Errorf("unexpected variable %v %q", v.Kind(), v.String())
	}
	if IsConcrete(v) {
		t.Error("variable must not be concrete")
	}
	if !IsConcrete(b) {
		t.Error("blank node must be concrete")
	}
}

func TestTermKindPredicates(t *testing.T) {
	if !IsIRI(NewIRI("x")) || IsIRI(NewLiteral("x")) {
		t.Error("IsIRI misbehaves")
	}
	if !IsLiteral(NewLiteral("x")) || IsLiteral(NewIRI("x")) {
		t.Error("IsLiteral misbehaves")
	}
	if !IsBlank(NewBlankNode("x")) || IsBlank(NewIRI("x")) {
		t.Error("IsBlank misbehaves")
	}
	if !IsVariable(NewVariable("x")) || IsVariable(NewIRI("x")) {
		t.Error("IsVariable misbehaves")
	}
}

func TestCompareTermsOrdering(t *testing.T) {
	iri := NewIRI("http://a")
	blank := NewBlankNode("b")
	lit := NewLiteral("c")
	variable := NewVariable("d")
	if CompareTerms(iri, blank) >= 0 {
		t.Error("IRI should sort before blank node")
	}
	if CompareTerms(blank, lit) >= 0 {
		t.Error("blank node should sort before literal")
	}
	if CompareTerms(lit, variable) >= 0 {
		t.Error("literal should sort before variable")
	}
	if CompareTerms(iri, iri) != 0 {
		t.Error("equal terms should compare 0")
	}
	if CompareTerms(nil, iri) >= 0 || CompareTerms(iri, nil) <= 0 {
		t.Error("nil ordering wrong")
	}
}

func TestCompareTermsIsAntisymmetric(t *testing.T) {
	f := func(a, b string) bool {
		x, y := NewIRI(a), NewIRI(b)
		return CompareTerms(x, y) == -CompareTerms(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTermKeyUniqueness(t *testing.T) {
	terms := []Term{
		NewIRI("http://a"),
		NewBlankNode("http://a"),
		NewLiteral("http://a"),
		NewVariable("http://a"),
		NewTypedLiteral("http://a", XSDInteger),
		NewLangLiteral("http://a", "en"),
	}
	seen := map[string]bool{}
	for _, x := range terms {
		k := TermKey(x)
		if seen[k] {
			t.Errorf("duplicate key %q for %v", k, x)
		}
		seen[k] = true
	}
}

func TestUnescapeLiteralUnicode(t *testing.T) {
	if got := UnescapeLiteral(`café`); got != "café" {
		t.Errorf("got %q", got)
	}
}

func TestIsXSDDatatype(t *testing.T) {
	if !IsXSDDatatype(XSDString) || !IsXSDDatatype(XSDDouble) {
		t.Error("standard types should be recognized")
	}
	if IsXSDDatatype(IRI("http://example.org/custom")) {
		t.Error("custom IRI should not be an XSD datatype")
	}
}
