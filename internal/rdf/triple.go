package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Triple is an RDF triple (subject, predicate, object). Subjects may be IRIs
// or blank nodes, predicates are IRIs, and objects may be IRIs, blank nodes
// or literals. The type does not enforce this at construction time so that
// triple patterns (containing variables) can reuse it; Validate reports
// whether the triple is a valid data triple.
type Triple struct {
	Subject   Term
	Predicate Term
	Object    Term
}

// NewTriple constructs a triple from the given terms.
func NewTriple(s, p, o Term) Triple {
	return Triple{Subject: s, Predicate: p, Object: o}
}

// T is a shorthand constructor for triples whose terms are all IRIs.
func T(s, p, o IRI) Triple { return Triple{Subject: s, Predicate: p, Object: o} }

// Validate reports whether the triple is a valid RDF data triple.
func (t Triple) Validate() error {
	if t.Subject == nil || t.Predicate == nil || t.Object == nil {
		return fmt.Errorf("rdf: triple has nil term: %v", t)
	}
	if k := t.Subject.Kind(); k != KindIRI && k != KindBlank {
		return fmt.Errorf("rdf: invalid subject kind %v in %v", k, t)
	}
	if t.Predicate.Kind() != KindIRI {
		return fmt.Errorf("rdf: invalid predicate kind %v in %v", t.Predicate.Kind(), t)
	}
	if t.Object.Kind() == KindVariable {
		return fmt.Errorf("rdf: variable object in data triple %v", t)
	}
	return nil
}

// IsGround reports whether the triple contains no variables.
func (t Triple) IsGround() bool {
	return IsConcrete(t.Subject) && IsConcrete(t.Predicate) && IsConcrete(t.Object)
}

// String returns an N-Triples-like serialization.
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", termString(t.Subject), termString(t.Predicate), termString(t.Object))
}

// Equal reports whether two triples are term-wise equal.
func (t Triple) Equal(o Triple) bool {
	return termsEqual(t.Subject, o.Subject) && termsEqual(t.Predicate, o.Predicate) && termsEqual(t.Object, o.Object)
}

// Quad is a triple placed in a named graph. A zero-value Graph ("") denotes
// the default graph.
type Quad struct {
	Triple
	Graph IRI
}

// NewQuad constructs a quad from a triple and a graph name.
func NewQuad(t Triple, graph IRI) Quad { return Quad{Triple: t, Graph: graph} }

// Q is a shorthand constructor for quads whose terms are all IRIs.
func Q(s, p, o, g IRI) Quad { return Quad{Triple: T(s, p, o), Graph: g} }

// String returns an N-Quads-like serialization.
func (q Quad) String() string {
	if q.Graph == "" {
		return q.Triple.String()
	}
	return fmt.Sprintf("%s %s %s %s .", termString(q.Subject), termString(q.Predicate), termString(q.Object), q.Graph.String())
}

// Equal reports whether two quads are equal.
func (q Quad) Equal(o Quad) bool { return q.Graph == o.Graph && q.Triple.Equal(o.Triple) }

// Graph is an ordered collection of triples together with a name. It is a
// lightweight value type used for subgraphs of the Global graph (LAV mapping
// graphs, query patterns); the indexed quad store lives in internal/store.
type Graph struct {
	Name    IRI
	Triples []Triple
}

// NewGraph returns an empty graph with the given name.
func NewGraph(name IRI) *Graph { return &Graph{Name: name} }

// Add appends triples to the graph, skipping exact duplicates.
func (g *Graph) Add(ts ...Triple) {
	for _, t := range ts {
		if !g.Contains(t) {
			g.Triples = append(g.Triples, t)
		}
	}
}

// Contains reports whether the graph holds the given triple.
func (g *Graph) Contains(t Triple) bool {
	for _, x := range g.Triples {
		if x.Equal(t) {
			return true
		}
	}
	return false
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return len(g.Triples) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name, Triples: make([]Triple, len(g.Triples))}
	copy(c.Triples, g.Triples)
	return c
}

// Merge adds all triples from other into g.
func (g *Graph) Merge(other *Graph) {
	if other == nil {
		return
	}
	g.Add(other.Triples...)
}

// Subjects returns the distinct subjects of the graph, sorted.
func (g *Graph) Subjects() []Term { return g.distinct(func(t Triple) Term { return t.Subject }) }

// Predicates returns the distinct predicates of the graph, sorted.
func (g *Graph) Predicates() []Term { return g.distinct(func(t Triple) Term { return t.Predicate }) }

// Objects returns the distinct objects of the graph, sorted.
func (g *Graph) Objects() []Term { return g.distinct(func(t Triple) Term { return t.Object }) }

// Nodes returns the distinct subjects and objects of the graph, sorted.
func (g *Graph) Nodes() []Term {
	seen := map[string]Term{}
	for _, t := range g.Triples {
		seen[termKey(t.Subject)] = t.Subject
		seen[termKey(t.Object)] = t.Object
	}
	return sortedTerms(seen)
}

// ContainsNode reports whether term appears as a subject or object.
func (g *Graph) ContainsNode(term Term) bool {
	for _, t := range g.Triples {
		if termsEqual(t.Subject, term) || termsEqual(t.Object, term) {
			return true
		}
	}
	return false
}

// OutgoingEdges returns all triples whose subject equals the given term.
func (g *Graph) OutgoingEdges(subject Term) []Triple {
	var out []Triple
	for _, t := range g.Triples {
		if termsEqual(t.Subject, subject) {
			out = append(out, t)
		}
	}
	return out
}

// IncomingEdges returns all triples whose object equals the given term.
func (g *Graph) IncomingEdges(object Term) []Triple {
	var out []Triple
	for _, t := range g.Triples {
		if termsEqual(t.Object, object) {
			out = append(out, t)
		}
	}
	return out
}

// Subsumes reports whether g contains every triple of other, that is,
// other ⊆ g. It is used to check LAV-mapping coverage.
func (g *Graph) Subsumes(other *Graph) bool {
	if other == nil {
		return true
	}
	for _, t := range other.Triples {
		if !g.Contains(t) {
			return false
		}
	}
	return true
}

// IsConnected reports whether the undirected version of the graph is
// connected (ignoring isolated graphs with no triples, which are trivially
// connected).
func (g *Graph) IsConnected() bool {
	if len(g.Triples) <= 1 {
		return true
	}
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for _, t := range g.Triples {
		s, o := termKey(t.Subject), termKey(t.Object)
		adj[s] = append(adj[s], o)
		adj[o] = append(adj[o], s)
		nodes[s], nodes[o] = true, true
	}
	var start string
	for n := range nodes {
		start = n
		break
	}
	visited := map[string]bool{start: true}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range adj[cur] {
			if !visited[n] {
				visited[n] = true
				queue = append(queue, n)
			}
		}
	}
	return len(visited) == len(nodes)
}

// TopologicalSort returns a topological ordering of the graph nodes if the
// directed graph is acyclic, or ok=false if it contains a cycle. Ties are
// broken deterministically by term order.
func (g *Graph) TopologicalSort() (order []Term, ok bool) {
	indeg := map[string]int{}
	terms := map[string]Term{}
	adj := map[string][]string{}
	for _, t := range g.Triples {
		s, o := termKey(t.Subject), termKey(t.Object)
		terms[s], terms[o] = t.Subject, t.Object
		if _, okk := indeg[s]; !okk {
			indeg[s] = 0
		}
		indeg[o]++
		adj[s] = append(adj[s], o)
	}
	var frontier []string
	for n, d := range indeg {
		if d == 0 {
			frontier = append(frontier, n)
		}
	}
	sort.Strings(frontier)
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		order = append(order, terms[cur])
		var added []string
		for _, n := range adj[cur] {
			indeg[n]--
			if indeg[n] == 0 {
				added = append(added, n)
			}
		}
		sort.Strings(added)
		frontier = append(frontier, added...)
	}
	return order, len(order) == len(terms)
}

// Equal reports whether two graphs contain exactly the same triple sets
// (order-insensitive).
func (g *Graph) Equal(other *Graph) bool {
	if other == nil {
		return g == nil || len(g.Triples) == 0
	}
	if len(g.Triples) != len(other.Triples) {
		return false
	}
	return g.Subsumes(other) && other.Subsumes(g)
}

// String returns a newline-separated serialization of the graph, sorted for
// determinism.
func (g *Graph) String() string {
	lines := make([]string, len(g.Triples))
	for i, t := range g.Triples {
		lines[i] = t.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func (g *Graph) distinct(pick func(Triple) Term) []Term {
	seen := map[string]Term{}
	for _, t := range g.Triples {
		x := pick(t)
		seen[termKey(x)] = x
	}
	return sortedTerms(seen)
}

func sortedTerms(m map[string]Term) []Term {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Term, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

func termString(t Term) string {
	if t == nil {
		return "<nil>"
	}
	return t.String()
}

func termsEqual(a, b Term) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Equal(b)
}

// termKey returns a unique string key for a term, used for map-based
// algorithms. Exposed internally via TermKey.
func termKey(t Term) string {
	if t == nil {
		return "\x00nil"
	}
	switch t.Kind() {
	case KindIRI:
		return "I" + t.Value()
	case KindBlank:
		return "B" + t.Value()
	case KindVariable:
		return "V" + t.Value()
	default:
		l := t.(Literal)
		return "L" + l.Lexical + "\x00" + string(l.Datatype) + "\x00" + l.Lang
	}
}

// TermKey returns a stable unique key for a term suitable for use as a map
// key across packages.
func TermKey(t Term) string { return termKey(t) }

// appendTermKey appends termKey(t) to dst without materializing an
// intermediate string. It must stay byte-identical to termKey: the dictionary
// packs these bytes into its key slab and callers compare them against
// TermKey output.
func appendTermKey(dst []byte, t Term) []byte {
	if t == nil {
		return append(dst, "\x00nil"...)
	}
	switch t.Kind() {
	case KindIRI:
		dst = append(dst, 'I')
		return append(dst, t.Value()...)
	case KindBlank:
		dst = append(dst, 'B')
		return append(dst, t.Value()...)
	case KindVariable:
		dst = append(dst, 'V')
		return append(dst, t.Value()...)
	default:
		l := t.(Literal)
		dst = append(dst, 'L')
		dst = append(dst, l.Lexical...)
		dst = append(dst, 0)
		dst = append(dst, string(l.Datatype)...)
		dst = append(dst, 0)
		return append(dst, l.Lang...)
	}
}
