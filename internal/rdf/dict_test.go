package rdf

import (
	"fmt"
	"sync"
	"testing"
)

func TestDictInternAssignsDenseStableIDs(t *testing.T) {
	d := NewDict()
	terms := []Term{
		IRI("http://ex/a"),
		NewBlankNode("b1"),
		NewLiteral("hello"),
		NewLangLiteral("bonjour", "fr"),
		NewIntegerLiteral(42),
		NewVariable("x"),
	}
	ids := make([]TermID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Intern(tm)
		if ids[i] != TermID(i+1) {
			t.Fatalf("Intern(%v) = %d, want dense id %d", tm, ids[i], i+1)
		}
	}
	for i, tm := range terms {
		if got := d.Intern(tm); got != ids[i] {
			t.Errorf("re-Intern(%v) = %d, want %d", tm, got, ids[i])
		}
		got, ok := d.Lookup(tm)
		if !ok || got != ids[i] {
			t.Errorf("Lookup(%v) = %d,%v", tm, got, ok)
		}
		back, ok := d.Term(ids[i])
		if !ok || !back.Equal(tm) {
			t.Errorf("Term(%d) = %v,%v, want %v", ids[i], back, ok, tm)
		}
	}
	if d.Len() != len(terms) {
		t.Errorf("Len = %d, want %d", d.Len(), len(terms))
	}
}

func TestDictDistinguishesKinds(t *testing.T) {
	d := NewDict()
	iri := d.Intern(IRI("x"))
	blank := d.Intern(NewBlankNode("x"))
	variable := d.Intern(NewVariable("x"))
	lit := d.Intern(NewLiteral("x"))
	seen := map[TermID]bool{iri: true, blank: true, variable: true, lit: true}
	if len(seen) != 4 {
		t.Errorf("same value under different kinds must get distinct ids: %d %d %d %d", iri, blank, variable, lit)
	}
}

func TestDictCanonicalizesLiterals(t *testing.T) {
	d := NewDict()
	plain := d.Intern(Literal{Lexical: "v"})
	typed := d.Intern(Literal{Lexical: "v", Datatype: XSDString})
	if plain != typed {
		t.Errorf("empty datatype and xsd:string must intern identically: %d vs %d", plain, typed)
	}
	other := d.Intern(Literal{Lexical: "v", Datatype: XSDInteger})
	if other == plain {
		t.Error("different datatype must get a different id")
	}
}

func TestDictLookupMisses(t *testing.T) {
	d := NewDict()
	if id, ok := d.Lookup(IRI("http://absent")); ok || id != 0 {
		t.Errorf("Lookup(absent) = %d,%v", id, ok)
	}
	if id := d.Intern(nil); id != 0 {
		t.Errorf("Intern(nil) = %d", id)
	}
	if _, ok := d.Lookup(nil); ok {
		t.Error("Lookup(nil) should miss")
	}
	if _, ok := d.Term(0); ok {
		t.Error("Term(0) should miss")
	}
	if _, ok := d.Term(99); ok {
		t.Error("Term(out of range) should miss")
	}
}

func TestDictConcurrentIntern(t *testing.T) {
	d := NewDict()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := d.Intern(IRI(fmt.Sprintf("http://ex/t%d", i%50)))
				if tm, ok := d.Term(id); !ok || tm == nil {
					t.Errorf("Term(%d) missing after Intern", id)
					return
				}
			}
		}()
	}
	wg.Wait()
	if d.Len() != 50 {
		t.Errorf("Len = %d, want 50 distinct terms", d.Len())
	}
}

func TestDictKeysAndLookupIRI(t *testing.T) {
	d := NewDict()
	terms := []Term{
		IRI("http://ex/a"),
		NewLiteral("hello"),
		BlankNode("b1"),
		Variable("v"),
	}
	for _, term := range terms {
		id := d.Intern(term)
		if k, ok := d.Key(id); !ok || k != TermKey(term) {
			t.Errorf("Key(%v) = %q, %v; want %q", term, k, ok, TermKey(term))
		}
	}
	if _, ok := d.Key(0); ok {
		t.Error("Key(0) should report false")
	}
	if _, ok := d.Key(TermID(len(terms) + 1)); ok {
		t.Error("Key of unassigned id should report false")
	}
	view := d.KeysView()
	if view.Len() != len(terms) {
		t.Fatalf("KeysView().Len() = %d, want %d", view.Len(), len(terms))
	}
	for i, term := range terms {
		id := TermID(i + 1)
		if k, ok := view.Key(id); !ok || string(k) != TermKey(term) {
			t.Errorf("view.Key(%d) = %q, %v; want %q", id, k, ok, TermKey(term))
		}
		if got, ok := view.Append([]byte("x"), id); !ok || string(got) != "x"+TermKey(term) {
			t.Errorf("view.Append(%d) = %q, %v", id, got, ok)
		}
		if got, ok := d.AppendKey(nil, id); !ok || string(got) != TermKey(term) {
			t.Errorf("AppendKey(%d) = %q, %v", id, got, ok)
		}
	}
	if _, ok := view.Key(0); ok {
		t.Error("view.Key(0) should report false")
	}
	// The view stays valid for already-assigned ids after growth, and does
	// not resolve ids assigned after it was taken.
	later := d.Intern(IRI("http://ex/later"))
	if k, ok := view.Key(1); !ok || string(k) != TermKey(terms[0]) {
		t.Error("view invalidated by later interning")
	}
	if _, ok := view.Key(later); ok {
		t.Error("view resolved an id assigned after it was taken")
	}
	if _, ok := d.AppendKey(nil, later+1); ok {
		t.Error("AppendKey of unassigned id should report false")
	}
	id, ok := d.LookupIRI("http://ex/a")
	if !ok {
		t.Fatal("LookupIRI missed an interned IRI")
	}
	if id2, _ := d.Lookup(IRI("http://ex/a")); id2 != id {
		t.Errorf("LookupIRI = %d, Lookup = %d", id, id2)
	}
	if _, ok := d.LookupIRI("http://ex/absent"); ok {
		t.Error("LookupIRI found an absent IRI")
	}
}
