package rdf

import (
	"fmt"
	"sync"

	"bdi/internal/slab"
)

// TermID is a dense integer identifier for a term interned in a Dict. The
// zero value is never assigned to a term and acts as a "not interned"
// sentinel, which lets callers use TermID-keyed structures without a
// separate presence flag.
type TermID uint32

// Dict is an append-only interning table mapping terms to dense TermIDs and
// back. It plays the role of a triplestore node table (Jena TDB's NodeTable):
// every term is translated to an integer exactly once, after which equality
// checks, index keys and dedup sets operate on fixed-width integers instead
// of rebuilding string keys.
//
// Interning is keyed on term identity as defined by Term.Equal: literals
// with an empty datatype are canonicalized to xsd:string before lookup, so
// two literals that Equal each other always intern to the same TermID.
// IDs are assigned in first-intern order and are never reused or freed; a
// Dict only grows. It is safe for concurrent use.
//
// Per-term sort keys (TermKey bytes, computed once at intern time) are not
// stored as individual strings: the key bytes of all terms are packed into a
// byte slab and addressed by pointer-free offsets (see bdi/internal/slab),
// so a dictionary with hundreds of thousands of terms contributes a handful
// of large noscan arrays to the GC-visible heap instead of one string
// allocation per term. Hot loops resolve keys lock-free through a KeyView.
type Dict struct {
	mu     sync.RWMutex
	iris   map[IRI]TermID
	blanks map[BlankNode]TermID
	vars   map[Variable]TermID
	lits   map[Literal]TermID
	terms  []Term // terms[id-1] is the term assigned id

	// keyRefs[id-1] addresses TermKey(terms[id-1]) inside keyBytes. Both
	// sides are append-only: once an id is published its key bytes never
	// move, so a snapshot of keyRefs plus a view of keyBytes resolves keys
	// without locking.
	keyRefs  []slab.Ref
	keyBytes *slab.Bytes
	scratch  []byte // assign-time key build buffer; guarded by mu
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		iris:     map[IRI]TermID{},
		blanks:   map[BlankNode]TermID{},
		vars:     map[Variable]TermID{},
		lits:     map[Literal]TermID{},
		keyBytes: slab.NewBytes(),
	}
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// canonLiteral maps a literal to its canonical interning key: an empty
// datatype means xsd:string (mirroring Literal.Equal).
func canonLiteral(l Literal) Literal {
	if l.Datatype == "" {
		l.Datatype = XSDString
	}
	return l
}

// Intern returns the TermID for t, assigning a fresh one on first sight.
// Interning nil returns 0.
func (d *Dict) Intern(t Term) TermID {
	if t == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch t.Kind() {
	case KindIRI:
		k := IRI(t.Value())
		if id, ok := d.iris[k]; ok {
			return id
		}
		id := d.assign(k)
		d.iris[k] = id
		return id
	case KindBlank:
		k := BlankNode(t.Value())
		if id, ok := d.blanks[k]; ok {
			return id
		}
		id := d.assign(k)
		d.blanks[k] = id
		return id
	case KindVariable:
		k := Variable(t.Value())
		if id, ok := d.vars[k]; ok {
			return id
		}
		id := d.assign(k)
		d.vars[k] = id
		return id
	default:
		k := canonLiteral(t.(Literal))
		if id, ok := d.lits[k]; ok {
			return id
		}
		id := d.assign(k)
		d.lits[k] = id
		return id
	}
}

func (d *Dict) assign(t Term) TermID {
	d.terms = append(d.terms, t)
	d.scratch = appendTermKey(d.scratch[:0], t)
	d.keyRefs = append(d.keyRefs, d.keyBytes.Append(d.scratch))
	return TermID(len(d.terms))
}

// Terms returns the dictionary's term table: terms[id-1] is the canonical
// term assigned id. The dictionary is append-only, so the returned slice is
// a stable snapshot for every id assigned before the call; callers must not
// mutate it. The durability layer uses it to dump the dictionary in ID order
// into a checkpoint.
func (d *Dict) Terms() []Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms
}

// NewDictFromTerms rebuilds a dictionary from a term table previously
// obtained via Terms (e.g. decoded from a checkpoint): terms[i] is assigned
// TermID i+1, exactly reversing the original first-intern order, and every
// per-term sort key is regenerated from the term value. It errors when the
// table contains a nil entry or a duplicate (two positions interning to the
// same TermID), which indicates a corrupt table.
func NewDictFromTerms(terms []Term) (*Dict, error) {
	d := NewDict()
	for i, t := range terms {
		if t == nil {
			return nil, fmt.Errorf("rdf: dict table has nil term at position %d", i)
		}
		if id := d.Intern(t); id != TermID(i+1) {
			return nil, fmt.Errorf("rdf: dict table position %d duplicates term %v (already id %d)", i, t, id)
		}
	}
	return d, nil
}

// Lookup returns the TermID previously assigned to t, or (0, false) when t
// has never been interned. Unlike TermKey-based maps it allocates nothing:
// the typed maps are keyed directly on the concrete term values.
func (d *Dict) Lookup(t Term) (TermID, bool) {
	if t == nil {
		return 0, false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	switch t.Kind() {
	case KindIRI:
		id, ok := d.iris[IRI(t.Value())]
		return id, ok
	case KindBlank:
		id, ok := d.blanks[BlankNode(t.Value())]
		return id, ok
	case KindVariable:
		id, ok := d.vars[Variable(t.Value())]
		return id, ok
	default:
		l, ok := t.(Literal)
		if !ok {
			return 0, false
		}
		id, ok := d.lits[canonLiteral(l)]
		return id, ok
	}
}

// Term returns the canonical term assigned the given id, or (nil, false) for
// 0 or an id that was never assigned.
func (d *Dict) Term(id TermID) (Term, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == 0 || int(id) > len(d.terms) {
		return nil, false
	}
	return d.terms[id-1], true
}

// LookupIRI is Lookup specialized to IRIs. Taking the concrete type avoids
// boxing the IRI into a Term interface value, which keeps hot accessor paths
// allocation-free.
func (d *Dict) LookupIRI(iri IRI) (TermID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.iris[iri]
	return id, ok
}

// KeysView captures a lock-free snapshot of the key table. The dictionary is
// append-only, so the view resolves every id assigned before the call
// forever; ids interned later are simply absent from it. Hot loops use it to
// resolve key bytes without per-id locking or per-key allocation.
func (d *Dict) KeysView() KeyView {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return KeyView{refs: d.keyRefs, blob: d.keyBytes.View()}
}

// KeyView is an immutable snapshot of a dictionary's key table. The zero
// value resolves no ids.
type KeyView struct {
	refs []slab.Ref
	blob slab.BytesView
}

// Len returns the number of ids the view resolves: every id in [1, Len].
func (v KeyView) Len() int { return len(v.refs) }

// Key returns the TermKey bytes of the term assigned the given id, or
// (nil, false) for 0 or an id assigned after the view was taken. The bytes
// are shared with the dictionary and must not be mutated.
func (v KeyView) Key(id TermID) ([]byte, bool) {
	if id == 0 || int(id) > len(v.refs) {
		return nil, false
	}
	return v.blob.Bytes(v.refs[id-1]), true
}

// Append appends the TermKey bytes of the given id to dst, reporting whether
// the view resolved it.
func (v KeyView) Append(dst []byte, id TermID) ([]byte, bool) {
	b, ok := v.Key(id)
	return append(dst, b...), ok
}

// Key returns the TermKey of the term assigned the given id, or ("", false)
// for 0 or an id that was never assigned. The key bytes were computed once
// at intern time; this form materializes them as a string and is intended
// for cold paths — hot paths use AppendKey or a KeyView to stay
// allocation-free.
func (d *Dict) Key(id TermID) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == 0 || int(id) > len(d.keyRefs) {
		return "", false
	}
	return string(d.keyBytes.Bytes(d.keyRefs[id-1])), true
}

// AppendKey appends the TermKey bytes of the term assigned the given id to
// dst, reporting whether the id was ever assigned (for 0 or an unknown id,
// dst is returned unchanged). Sort-key construction on the store's write
// path uses it to concatenate per-term keys without allocating one string
// per term.
func (d *Dict) AppendKey(dst []byte, id TermID) ([]byte, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == 0 || int(id) > len(d.keyRefs) {
		return dst, false
	}
	return append(dst, d.keyBytes.Bytes(d.keyRefs[id-1])...), true
}
