package rdf

import (
	"fmt"
	"sync"
)

// TermID is a dense integer identifier for a term interned in a Dict. The
// zero value is never assigned to a term and acts as a "not interned"
// sentinel, which lets callers use TermID-keyed structures without a
// separate presence flag.
type TermID uint32

// Dict is an append-only interning table mapping terms to dense TermIDs and
// back. It plays the role of a triplestore node table (Jena TDB's NodeTable):
// every term is translated to an integer exactly once, after which equality
// checks, index keys and dedup sets operate on fixed-width integers instead
// of rebuilding string keys.
//
// Interning is keyed on term identity as defined by Term.Equal: literals
// with an empty datatype are canonicalized to xsd:string before lookup, so
// two literals that Equal each other always intern to the same TermID.
// IDs are assigned in first-intern order and are never reused or freed; a
// Dict only grows. It is safe for concurrent use.
type Dict struct {
	mu     sync.RWMutex
	iris   map[IRI]TermID
	blanks map[BlankNode]TermID
	vars   map[Variable]TermID
	lits   map[Literal]TermID
	terms  []Term   // terms[id-1] is the term assigned id
	keys   []string // keys[id-1] is TermKey(terms[id-1]), computed once
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		iris:   map[IRI]TermID{},
		blanks: map[BlankNode]TermID{},
		vars:   map[Variable]TermID{},
		lits:   map[Literal]TermID{},
	}
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// canonLiteral maps a literal to its canonical interning key: an empty
// datatype means xsd:string (mirroring Literal.Equal).
func canonLiteral(l Literal) Literal {
	if l.Datatype == "" {
		l.Datatype = XSDString
	}
	return l
}

// Intern returns the TermID for t, assigning a fresh one on first sight.
// Interning nil returns 0.
func (d *Dict) Intern(t Term) TermID {
	if t == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	switch t.Kind() {
	case KindIRI:
		k := IRI(t.Value())
		if id, ok := d.iris[k]; ok {
			return id
		}
		id := d.assign(k)
		d.iris[k] = id
		return id
	case KindBlank:
		k := BlankNode(t.Value())
		if id, ok := d.blanks[k]; ok {
			return id
		}
		id := d.assign(k)
		d.blanks[k] = id
		return id
	case KindVariable:
		k := Variable(t.Value())
		if id, ok := d.vars[k]; ok {
			return id
		}
		id := d.assign(k)
		d.vars[k] = id
		return id
	default:
		k := canonLiteral(t.(Literal))
		if id, ok := d.lits[k]; ok {
			return id
		}
		id := d.assign(k)
		d.lits[k] = id
		return id
	}
}

func (d *Dict) assign(t Term) TermID {
	d.terms = append(d.terms, t)
	d.keys = append(d.keys, termKey(t))
	return TermID(len(d.terms))
}

// Terms returns the dictionary's term table: terms[id-1] is the canonical
// term assigned id. The dictionary is append-only, so the returned slice is
// a stable snapshot for every id assigned before the call; callers must not
// mutate it. The durability layer uses it to dump the dictionary in ID order
// into a checkpoint.
func (d *Dict) Terms() []Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.terms
}

// NewDictFromTerms rebuilds a dictionary from a term table previously
// obtained via Terms (e.g. decoded from a checkpoint): terms[i] is assigned
// TermID i+1, exactly reversing the original first-intern order, and every
// per-term sort key is regenerated from the term value. It errors when the
// table contains a nil entry or a duplicate (two positions interning to the
// same TermID), which indicates a corrupt table.
func NewDictFromTerms(terms []Term) (*Dict, error) {
	d := NewDict()
	for i, t := range terms {
		if t == nil {
			return nil, fmt.Errorf("rdf: dict table has nil term at position %d", i)
		}
		if id := d.Intern(t); id != TermID(i+1) {
			return nil, fmt.Errorf("rdf: dict table position %d duplicates term %v (already id %d)", i, t, id)
		}
	}
	return d, nil
}

// Lookup returns the TermID previously assigned to t, or (0, false) when t
// has never been interned. Unlike TermKey-based maps it allocates nothing:
// the typed maps are keyed directly on the concrete term values.
func (d *Dict) Lookup(t Term) (TermID, bool) {
	if t == nil {
		return 0, false
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	switch t.Kind() {
	case KindIRI:
		id, ok := d.iris[IRI(t.Value())]
		return id, ok
	case KindBlank:
		id, ok := d.blanks[BlankNode(t.Value())]
		return id, ok
	case KindVariable:
		id, ok := d.vars[Variable(t.Value())]
		return id, ok
	default:
		l, ok := t.(Literal)
		if !ok {
			return 0, false
		}
		id, ok := d.lits[canonLiteral(l)]
		return id, ok
	}
}

// Term returns the canonical term assigned the given id, or (nil, false) for
// 0 or an id that was never assigned.
func (d *Dict) Term(id TermID) (Term, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == 0 || int(id) > len(d.terms) {
		return nil, false
	}
	return d.terms[id-1], true
}

// LookupIRI is Lookup specialized to IRIs. Taking the concrete type avoids
// boxing the IRI into a Term interface value, which keeps hot accessor paths
// allocation-free.
func (d *Dict) LookupIRI(iri IRI) (TermID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.iris[iri]
	return id, ok
}

// Keys returns the dictionary's key table: keys[id-1] is the TermKey of the
// term assigned id. The dictionary is append-only, so the returned slice is
// a stable snapshot for every id assigned before the call; callers must not
// mutate it. Hot loops use it to resolve keys without per-id locking.
func (d *Dict) Keys() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.keys
}

// Key returns the TermKey of the term assigned the given id, or ("", false)
// for 0 or an id that was never assigned. The key is computed once at intern
// time, so hot paths (sort keys, DISTINCT elimination, deterministic
// ordering) can compare or concatenate per-term keys without re-deriving
// them from the term.
func (d *Dict) Key(id TermID) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == 0 || int(id) > len(d.keys) {
		return "", false
	}
	return d.keys[id-1], true
}
