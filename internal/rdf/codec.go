package rdf

import (
	"encoding/binary"
	"fmt"
)

// Binary term codec shared by the durability layer: write-ahead-log records
// and checkpoint dictionary tables serialize terms with AppendTerm and read
// them back with DecodeTerm. The encoding is self-delimiting (a one-byte kind
// tag followed by uvarint-length-prefixed strings), so terms can be
// concatenated without an outer frame, and it round-trips exactly: decoding
// an encoded term yields a term Equal to the original, including the literal
// datatype canonicalization performed by the Dict (callers encode the
// canonical term the Dict returned, so no renormalization happens here).

// Codec tags, one per term kind. They are part of the on-disk format and
// must never be renumbered.
const (
	codecIRI      = 0x01
	codecBlank    = 0x02
	codecLiteral  = 0x03
	codecVariable = 0x04
)

// AppendTerm appends the binary encoding of t to dst and returns the
// extended slice. Nil terms are not encodable; callers must not pass them.
func AppendTerm(dst []byte, t Term) []byte {
	switch x := t.(type) {
	case IRI:
		dst = append(dst, codecIRI)
		return AppendString(dst, string(x))
	case BlankNode:
		dst = append(dst, codecBlank)
		return AppendString(dst, string(x))
	case Variable:
		dst = append(dst, codecVariable)
		return AppendString(dst, string(x))
	case Literal:
		dst = append(dst, codecLiteral)
		dst = AppendString(dst, x.Lexical)
		dst = AppendString(dst, string(x.Datatype))
		return AppendString(dst, x.Lang)
	default:
		panic(fmt.Sprintf("rdf: cannot encode term %v (%T)", t, t))
	}
}

// DecodeTerm decodes one term from the front of b, returning the term and
// the number of bytes consumed.
func DecodeTerm(b []byte) (Term, int, error) {
	if len(b) == 0 {
		return nil, 0, fmt.Errorf("rdf: decoding term: empty input")
	}
	kind := b[0]
	n := 1
	switch kind {
	case codecIRI, codecBlank, codecVariable:
		s, m, err := DecodeString(b[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		switch kind {
		case codecIRI:
			return IRI(s), n, nil
		case codecBlank:
			return BlankNode(s), n, nil
		default:
			return Variable(s), n, nil
		}
	case codecLiteral:
		lex, m, err := DecodeString(b[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		dt, m, err := DecodeString(b[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		lang, m, err := DecodeString(b[n:])
		if err != nil {
			return nil, 0, err
		}
		n += m
		return Literal{Lexical: lex, Datatype: IRI(dt), Lang: lang}, n, nil
	default:
		return nil, 0, fmt.Errorf("rdf: decoding term: unknown kind tag 0x%02x", kind)
	}
}

// AppendString appends the codec's uvarint-length-prefixed string encoding
// of s to dst. It is the wire primitive the term encodings above are built
// from; the durability layer reuses it for graph names and IRI lists so the
// on-disk format has exactly one definition.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeString decodes one AppendString-encoded string from the front of b,
// returning the string and the number of bytes consumed.
func DecodeString(b []byte) (string, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return "", 0, fmt.Errorf("rdf: decoding string: bad length")
	}
	if uint64(len(b)-n) < l {
		return "", 0, fmt.Errorf("rdf: decoding string: truncated (%d of %d bytes)", len(b)-n, l)
	}
	return string(b[n : n+int(l)]), n + int(l), nil
}
