// Package turtle implements a parser and serializer for the subset of the
// Turtle, N-Triples and TriG syntaxes used by the BDI ontology: @prefix
// directives, IRIs, prefixed names, string/numeric/boolean literals,
// language tags, datatype annotations, predicate-object lists (';'), object
// lists (','), blank node labels and GRAPH blocks (TriG).
package turtle

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF             tokenKind = iota
	tokIRI                       // <http://...>
	tokPrefixedName              // ex:foo  or  ex:
	tokBlankNode                 // _:b1
	tokLiteral                   // "..."
	tokLangTag                   // @en
	tokDatatypeMarker            // ^^
	tokNumber                    // 42, 4.2, -1e3
	tokBoolean                   // true / false
	tokDot                       // .
	tokSemicolon                 // ;
	tokComma                     // ,
	tokPrefixDirective           // @prefix
	tokBaseDirective             // @base
	tokA                         // 'a' keyword (rdf:type)
	tokLBrace                    // {
	tokRBrace                    // }
	tokGraphKeyword              // GRAPH
)

type token struct {
	kind  tokenKind
	value string
	line  int
	col   int
}

func (t token) String() string {
	return fmt.Sprintf("token(%d, %q, line %d col %d)", t.kind, t.value, t.line, t.col)
}

type lexer struct {
	input string
	pos   int
	line  int
	col   int
}

func newLexer(input string) *lexer {
	return &lexer{input: input, line: 1, col: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d col %d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.input) {
		return 0
	}
	return l.input[l.pos]
}

func (l *lexer) peekAt(offset int) byte {
	if l.pos+offset >= len(l.input) {
		return 0
	}
	return l.input[l.pos+offset]
}

func (l *lexer) advance() byte {
	c := l.input[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipWhitespaceAndComments() {
	for l.pos < len(l.input) {
		c := l.peek()
		if c == '#' {
			for l.pos < len(l.input) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.advance()
			continue
		}
		return
	}
}

// next returns the next token from the input.
func (l *lexer) next() (token, error) {
	l.skipWhitespaceAndComments()
	startLine, startCol := l.line, l.col
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, line: startLine, col: startCol}, nil
	}
	c := l.peek()
	switch {
	case c == '<':
		return l.lexIRI(startLine, startCol)
	case c == '"' || c == '\'':
		return l.lexString(startLine, startCol)
	case c == '@':
		return l.lexAtKeyword(startLine, startCol)
	case c == '_' && l.peekAt(1) == ':':
		return l.lexBlankNode(startLine, startCol)
	case c == '^' && l.peekAt(1) == '^':
		l.advance()
		l.advance()
		return token{kind: tokDatatypeMarker, value: "^^", line: startLine, col: startCol}, nil
	case c == '.':
		// A dot may start a decimal like ".5"; in Turtle the statement
		// terminator is far more common, so only treat as number when a digit
		// follows immediately and the previous token context requires it.
		if isDigit(l.peekAt(1)) {
			return l.lexNumber(startLine, startCol)
		}
		l.advance()
		return token{kind: tokDot, value: ".", line: startLine, col: startCol}, nil
	case c == ';':
		l.advance()
		return token{kind: tokSemicolon, value: ";", line: startLine, col: startCol}, nil
	case c == ',':
		l.advance()
		return token{kind: tokComma, value: ",", line: startLine, col: startCol}, nil
	case c == '{':
		l.advance()
		return token{kind: tokLBrace, value: "{", line: startLine, col: startCol}, nil
	case c == '}':
		l.advance()
		return token{kind: tokRBrace, value: "}", line: startLine, col: startCol}, nil
	case isDigit(c) || ((c == '+' || c == '-') && isDigit(l.peekAt(1))):
		return l.lexNumber(startLine, startCol)
	default:
		return l.lexName(startLine, startCol)
	}
}

func (l *lexer) lexIRI(line, col int) (token, error) {
	l.advance() // consume '<'
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.advance()
		if c == '>' {
			return token{kind: tokIRI, value: b.String(), line: line, col: col}, nil
		}
		if c == '\n' {
			return token{}, l.errorf("unterminated IRI")
		}
		b.WriteByte(c)
	}
	return token{}, l.errorf("unterminated IRI")
}

func (l *lexer) lexString(line, col int) (token, error) {
	quote := l.advance()
	long := false
	if l.peek() == quote && l.peekAt(1) == quote {
		long = true
		l.advance()
		l.advance()
	}
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.advance()
		if c == '\\' && l.pos < len(l.input) {
			b.WriteByte(c)
			b.WriteByte(l.advance())
			continue
		}
		if c == quote {
			if !long {
				return token{kind: tokLiteral, value: b.String(), line: line, col: col}, nil
			}
			if l.peek() == quote && l.peekAt(1) == quote {
				l.advance()
				l.advance()
				return token{kind: tokLiteral, value: b.String(), line: line, col: col}, nil
			}
		}
		b.WriteByte(c)
	}
	return token{}, l.errorf("unterminated string literal")
}

func (l *lexer) lexAtKeyword(line, col int) (token, error) {
	l.advance() // consume '@'
	var b strings.Builder
	for l.pos < len(l.input) && (isLetter(l.peek()) || l.peek() == '-') {
		b.WriteByte(l.advance())
	}
	word := b.String()
	switch strings.ToLower(word) {
	case "prefix":
		return token{kind: tokPrefixDirective, value: word, line: line, col: col}, nil
	case "base":
		return token{kind: tokBaseDirective, value: word, line: line, col: col}, nil
	default:
		return token{kind: tokLangTag, value: word, line: line, col: col}, nil
	}
}

func (l *lexer) lexBlankNode(line, col int) (token, error) {
	l.advance() // '_'
	l.advance() // ':'
	var b strings.Builder
	for l.pos < len(l.input) && isNameChar(l.peek()) {
		b.WriteByte(l.advance())
	}
	if b.Len() == 0 {
		return token{}, l.errorf("empty blank node label")
	}
	return token{kind: tokBlankNode, value: b.String(), line: line, col: col}, nil
}

func (l *lexer) lexNumber(line, col int) (token, error) {
	var b strings.Builder
	if l.peek() == '+' || l.peek() == '-' {
		b.WriteByte(l.advance())
	}
	seenDot, seenExp := false, false
	for l.pos < len(l.input) {
		c := l.peek()
		switch {
		case isDigit(c):
			b.WriteByte(l.advance())
		case c == '.' && !seenDot && isDigit(l.peekAt(1)):
			seenDot = true
			b.WriteByte(l.advance())
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			b.WriteByte(l.advance())
			if l.peek() == '+' || l.peek() == '-' {
				b.WriteByte(l.advance())
			}
		default:
			return token{kind: tokNumber, value: b.String(), line: line, col: col}, nil
		}
	}
	return token{kind: tokNumber, value: b.String(), line: line, col: col}, nil
}

func (l *lexer) lexName(line, col int) (token, error) {
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.peek()
		if isNameChar(c) || c == ':' || c == '/' || c == '~' || c == '#' || c == '%' || c == '+' {
			b.WriteByte(l.advance())
			continue
		}
		break
	}
	word := b.String()
	if word == "" {
		return token{}, l.errorf("unexpected character %q", string(l.peek()))
	}
	switch word {
	case "a":
		return token{kind: tokA, value: word, line: line, col: col}, nil
	case "true", "false":
		return token{kind: tokBoolean, value: word, line: line, col: col}, nil
	case "GRAPH", "graph":
		return token{kind: tokGraphKeyword, value: word, line: line, col: col}, nil
	case "PREFIX", "prefix":
		return token{kind: tokPrefixDirective, value: word, line: line, col: col}, nil
	case "BASE", "base":
		return token{kind: tokBaseDirective, value: word, line: line, col: col}, nil
	}
	return token{kind: tokPrefixedName, value: word, line: line, col: col}, nil
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return unicode.IsLetter(rune(c)) }
func isNameChar(c byte) bool {
	return isLetter(c) || isDigit(c) || c == '_' || c == '-' || c == '.'
}
