package turtle

import (
	"fmt"
	"strings"

	"bdi/internal/rdf"
)

// Document is the result of parsing a Turtle or TriG document: the quads
// (triples in the default graph carry an empty graph name), plus the prefix
// bindings encountered.
type Document struct {
	Quads    []rdf.Quad
	Prefixes *rdf.PrefixMap
	Base     string
}

// Triples returns only the triples in the default graph.
func (d *Document) Triples() []rdf.Triple {
	var out []rdf.Triple
	for _, q := range d.Quads {
		if q.Graph == "" {
			out = append(out, q.Triple)
		}
	}
	return out
}

// Parse parses a Turtle or TriG document.
func Parse(input string) (*Document, error) {
	p := &parser{
		lex:      newLexer(input),
		doc:      &Document{Prefixes: rdf.NewPrefixMap()},
		blankSeq: 0,
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.doc, nil
}

// ParseTriples parses a Turtle document and returns its default-graph
// triples, failing if any named graph blocks are present.
func ParseTriples(input string) ([]rdf.Triple, error) {
	doc, err := Parse(input)
	if err != nil {
		return nil, err
	}
	for _, q := range doc.Quads {
		if q.Graph != "" {
			return nil, fmt.Errorf("turtle: unexpected named graph %s in triples-only document", q.Graph)
		}
	}
	return doc.Triples(), nil
}

type parser struct {
	lex      *lexer
	doc      *Document
	cur      token
	peeked   *token
	blankSeq int
	graph    rdf.IRI // current named graph ("" = default)
}

func (p *parser) nextToken() (token, error) {
	if p.peeked != nil {
		t := *p.peeked
		p.peeked = nil
		p.cur = t
		return t, nil
	}
	t, err := p.lex.next()
	if err != nil {
		return token{}, err
	}
	p.cur = t
	return t, nil
}

func (p *parser) peekToken() (token, error) {
	if p.peeked != nil {
		return *p.peeked, nil
	}
	t, err := p.lex.next()
	if err != nil {
		return token{}, err
	}
	p.peeked = &t
	return t, nil
}

func (p *parser) run() error {
	for {
		t, err := p.peekToken()
		if err != nil {
			return err
		}
		switch t.kind {
		case tokEOF:
			return nil
		case tokPrefixDirective:
			if err := p.parsePrefix(); err != nil {
				return err
			}
		case tokBaseDirective:
			if err := p.parseBase(); err != nil {
				return err
			}
		case tokGraphKeyword:
			if err := p.parseGraphBlock(); err != nil {
				return err
			}
		default:
			// Either a TriG graph block "<name> { ... }" or a triple statement.
			if err := p.parseStatementOrGraph(); err != nil {
				return err
			}
		}
	}
}

func (p *parser) parsePrefix() error {
	if _, err := p.nextToken(); err != nil { // consume @prefix
		return err
	}
	nameTok, err := p.nextToken()
	if err != nil {
		return err
	}
	if nameTok.kind != tokPrefixedName && nameTok.kind != tokA {
		return fmt.Errorf("turtle: expected prefix name, got %v", nameTok)
	}
	if !strings.HasSuffix(nameTok.value, ":") {
		return fmt.Errorf("turtle: prefix name %q must end with ':'", nameTok.value)
	}
	prefix := strings.TrimSuffix(nameTok.value, ":")
	iriTok, err := p.nextToken()
	if err != nil {
		return err
	}
	if iriTok.kind != tokIRI {
		return fmt.Errorf("turtle: expected namespace IRI, got %v", iriTok)
	}
	p.doc.Prefixes.Bind(prefix, iriTok.value)
	// Optional trailing dot (required for @prefix, absent for SPARQL-style PREFIX).
	next, err := p.peekToken()
	if err != nil {
		return err
	}
	if next.kind == tokDot {
		_, err = p.nextToken()
	}
	return err
}

func (p *parser) parseBase() error {
	if _, err := p.nextToken(); err != nil {
		return err
	}
	iriTok, err := p.nextToken()
	if err != nil {
		return err
	}
	if iriTok.kind != tokIRI {
		return fmt.Errorf("turtle: expected base IRI, got %v", iriTok)
	}
	p.doc.Base = iriTok.value
	next, err := p.peekToken()
	if err != nil {
		return err
	}
	if next.kind == tokDot {
		_, err = p.nextToken()
	}
	return err
}

func (p *parser) parseGraphBlock() error {
	if _, err := p.nextToken(); err != nil { // consume GRAPH
		return err
	}
	nameTok, err := p.nextToken()
	if err != nil {
		return err
	}
	name, err := p.resolveIRIToken(nameTok)
	if err != nil {
		return err
	}
	return p.parseBracedBlock(name)
}

// parseStatementOrGraph handles both `subject predicate object .` and the
// TriG form `graphName { ... }`.
func (p *parser) parseStatementOrGraph() error {
	subjTok, err := p.nextToken()
	if err != nil {
		return err
	}
	next, err := p.peekToken()
	if err != nil {
		return err
	}
	if next.kind == tokLBrace {
		name, err := p.resolveIRIToken(subjTok)
		if err != nil {
			return err
		}
		return p.parseBracedBlock(name)
	}
	subject, err := p.tokenToTerm(subjTok)
	if err != nil {
		return err
	}
	return p.parsePredicateObjectList(subject, true)
}

func (p *parser) parseBracedBlock(name rdf.IRI) error {
	lb, err := p.nextToken()
	if err != nil {
		return err
	}
	if lb.kind != tokLBrace {
		return fmt.Errorf("turtle: expected '{' after graph name, got %v", lb)
	}
	prevGraph := p.graph
	p.graph = name
	defer func() { p.graph = prevGraph }()
	for {
		t, err := p.peekToken()
		if err != nil {
			return err
		}
		if t.kind == tokRBrace {
			_, err := p.nextToken()
			if err != nil {
				return err
			}
			// Optional trailing dot after a graph block.
			nt, err := p.peekToken()
			if err != nil {
				return err
			}
			if nt.kind == tokDot {
				_, err = p.nextToken()
			}
			return err
		}
		if t.kind == tokEOF {
			return fmt.Errorf("turtle: unterminated graph block for %s", name)
		}
		subjTok, err := p.nextToken()
		if err != nil {
			return err
		}
		subject, err := p.tokenToTerm(subjTok)
		if err != nil {
			return err
		}
		if err := p.parsePredicateObjectList(subject, true); err != nil {
			return err
		}
	}
}

// parsePredicateObjectList parses "pred obj (, obj)* (; pred obj ...)* ."
// for the given subject. When requireDot is true a final '.' terminates the
// statement (it may be omitted right before '}' in TriG blocks).
func (p *parser) parsePredicateObjectList(subject rdf.Term, requireDot bool) error {
	for {
		predTok, err := p.nextToken()
		if err != nil {
			return err
		}
		var predicate rdf.Term
		if predTok.kind == tokA {
			predicate = rdf.RDFType
		} else {
			predicate, err = p.tokenToTerm(predTok)
			if err != nil {
				return err
			}
			if predicate.Kind() != rdf.KindIRI {
				return fmt.Errorf("turtle: predicate must be an IRI, got %v", predicate)
			}
		}
		// Object list.
		for {
			object, err := p.parseObject()
			if err != nil {
				return err
			}
			p.emit(subject, predicate, object)
			sep, err := p.peekToken()
			if err != nil {
				return err
			}
			if sep.kind == tokComma {
				if _, err := p.nextToken(); err != nil {
					return err
				}
				continue
			}
			break
		}
		sep, err := p.peekToken()
		if err != nil {
			return err
		}
		switch sep.kind {
		case tokSemicolon:
			if _, err := p.nextToken(); err != nil {
				return err
			}
			// A semicolon may be followed directly by '.' (trailing semicolon).
			nt, err := p.peekToken()
			if err != nil {
				return err
			}
			if nt.kind == tokDot {
				_, err := p.nextToken()
				return err
			}
			if nt.kind == tokRBrace || nt.kind == tokEOF {
				return nil
			}
			continue
		case tokDot:
			_, err := p.nextToken()
			return err
		case tokRBrace, tokEOF:
			if requireDot && sep.kind == tokEOF {
				return nil
			}
			return nil
		default:
			return fmt.Errorf("turtle: expected '.', ';' or ',', got %v", sep)
		}
	}
}

func (p *parser) parseObject() (rdf.Term, error) {
	tok, err := p.nextToken()
	if err != nil {
		return nil, err
	}
	switch tok.kind {
	case tokIRI, tokPrefixedName, tokBlankNode:
		return p.tokenToTerm(tok)
	case tokLiteral:
		lexical := rdf.UnescapeLiteral(tok.value)
		next, err := p.peekToken()
		if err != nil {
			return nil, err
		}
		switch next.kind {
		case tokLangTag:
			if _, err := p.nextToken(); err != nil {
				return nil, err
			}
			return rdf.NewLangLiteral(lexical, next.value), nil
		case tokDatatypeMarker:
			if _, err := p.nextToken(); err != nil {
				return nil, err
			}
			dtTok, err := p.nextToken()
			if err != nil {
				return nil, err
			}
			dt, err := p.resolveIRIToken(dtTok)
			if err != nil {
				return nil, err
			}
			return rdf.NewTypedLiteral(lexical, dt), nil
		default:
			return rdf.NewLiteral(lexical), nil
		}
	case tokNumber:
		if strings.ContainsAny(tok.value, ".eE") {
			return rdf.NewTypedLiteral(tok.value, rdf.XSDDecimal), nil
		}
		return rdf.NewTypedLiteral(tok.value, rdf.XSDInteger), nil
	case tokBoolean:
		return rdf.NewTypedLiteral(tok.value, rdf.XSDBoolean), nil
	case tokA:
		return rdf.RDFType, nil
	default:
		return nil, fmt.Errorf("turtle: unexpected object token %v", tok)
	}
}

func (p *parser) tokenToTerm(tok token) (rdf.Term, error) {
	switch tok.kind {
	case tokIRI:
		return p.resolveIRI(tok.value), nil
	case tokPrefixedName:
		iri, _ := p.doc.Prefixes.Expand(tok.value)
		return iri, nil
	case tokBlankNode:
		return rdf.NewBlankNode(tok.value), nil
	case tokLiteral:
		return rdf.NewLiteral(rdf.UnescapeLiteral(tok.value)), nil
	case tokNumber:
		if strings.ContainsAny(tok.value, ".eE") {
			return rdf.NewTypedLiteral(tok.value, rdf.XSDDecimal), nil
		}
		return rdf.NewTypedLiteral(tok.value, rdf.XSDInteger), nil
	case tokBoolean:
		return rdf.NewTypedLiteral(tok.value, rdf.XSDBoolean), nil
	default:
		return nil, fmt.Errorf("turtle: cannot convert token %v to a term", tok)
	}
}

func (p *parser) resolveIRIToken(tok token) (rdf.IRI, error) {
	t, err := p.tokenToTerm(tok)
	if err != nil {
		return "", err
	}
	iri, ok := t.(rdf.IRI)
	if !ok {
		return "", fmt.Errorf("turtle: expected an IRI, got %v", t)
	}
	return iri, nil
}

func (p *parser) resolveIRI(value string) rdf.IRI {
	if p.doc.Base != "" && !strings.Contains(value, "://") && !strings.HasPrefix(value, "urn:") {
		return rdf.IRI(p.doc.Base + value)
	}
	return rdf.IRI(value)
}

func (p *parser) emit(s, pred, o rdf.Term) {
	p.doc.Quads = append(p.doc.Quads, rdf.Quad{
		Triple: rdf.Triple{Subject: s, Predicate: pred, Object: o},
		Graph:  p.graph,
	})
}
