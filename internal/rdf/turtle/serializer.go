package turtle

import (
	"fmt"
	"sort"
	"strings"

	"bdi/internal/rdf"
)

// Serializer writes triples and quads in Turtle / TriG syntax with optional
// prefix compaction and grouping by subject.
type Serializer struct {
	Prefixes *rdf.PrefixMap
	// GroupBySubject enables `subject pred obj ; pred obj .` grouping.
	GroupBySubject bool
}

// NewSerializer returns a serializer using the default BDI prefixes.
func NewSerializer() *Serializer {
	return &Serializer{Prefixes: rdf.DefaultPrefixes(), GroupBySubject: true}
}

// SerializeTriples renders the given triples as a Turtle document.
func (s *Serializer) SerializeTriples(triples []rdf.Triple) string {
	var b strings.Builder
	if s.Prefixes != nil {
		b.WriteString(s.Prefixes.TurtleHeader())
		if len(triples) > 0 {
			b.WriteByte('\n')
		}
	}
	s.writeTriples(&b, triples, "")
	return b.String()
}

// SerializeQuads renders quads as a TriG document: default-graph triples
// first, then one GRAPH block per named graph, in sorted graph order.
func (s *Serializer) SerializeQuads(quads []rdf.Quad) string {
	var b strings.Builder
	if s.Prefixes != nil {
		b.WriteString(s.Prefixes.TurtleHeader())
		b.WriteByte('\n')
	}
	byGraph := map[rdf.IRI][]rdf.Triple{}
	for _, q := range quads {
		byGraph[q.Graph] = append(byGraph[q.Graph], q.Triple)
	}
	if def, ok := byGraph[""]; ok {
		s.writeTriples(&b, def, "")
		delete(byGraph, "")
	}
	names := make([]string, 0, len(byGraph))
	for g := range byGraph {
		names = append(names, string(g))
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "\nGRAPH %s {\n", s.renderIRI(rdf.IRI(name)))
		s.writeTriples(&b, byGraph[rdf.IRI(name)], "  ")
		b.WriteString("}\n")
	}
	return b.String()
}

// SerializeNTriples renders triples in plain N-Triples (no prefixes).
func SerializeNTriples(triples []rdf.Triple) string {
	lines := make([]string, len(triples))
	for i, t := range triples {
		lines[i] = t.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func (s *Serializer) writeTriples(b *strings.Builder, triples []rdf.Triple, indent string) {
	if !s.GroupBySubject {
		sorted := make([]string, len(triples))
		for i, t := range triples {
			sorted[i] = fmt.Sprintf("%s%s %s %s .", indent, s.renderTerm(t.Subject), s.renderTerm(t.Predicate), s.renderTerm(t.Object))
		}
		sort.Strings(sorted)
		for _, line := range sorted {
			b.WriteString(line)
			b.WriteByte('\n')
		}
		return
	}
	bySubject := map[string][]rdf.Triple{}
	var subjectKeys []string
	for _, t := range triples {
		k := rdf.TermKey(t.Subject)
		if _, ok := bySubject[k]; !ok {
			subjectKeys = append(subjectKeys, k)
		}
		bySubject[k] = append(bySubject[k], t)
	}
	sort.Strings(subjectKeys)
	for _, k := range subjectKeys {
		group := bySubject[k]
		sort.Slice(group, func(i, j int) bool {
			if c := rdf.CompareTerms(group[i].Predicate, group[j].Predicate); c != 0 {
				return c < 0
			}
			return rdf.CompareTerms(group[i].Object, group[j].Object) < 0
		})
		b.WriteString(indent)
		b.WriteString(s.renderTerm(group[0].Subject))
		for i, t := range group {
			if i == 0 {
				b.WriteByte(' ')
			} else {
				b.WriteString(" ;\n")
				b.WriteString(indent)
				b.WriteString(strings.Repeat(" ", 4))
			}
			b.WriteString(s.renderTerm(t.Predicate))
			b.WriteByte(' ')
			b.WriteString(s.renderTerm(t.Object))
		}
		b.WriteString(" .\n")
	}
}

func (s *Serializer) renderTerm(t rdf.Term) string {
	if t == nil {
		return "<nil>"
	}
	if iri, ok := t.(rdf.IRI); ok {
		return s.renderIRI(iri)
	}
	return t.String()
}

func (s *Serializer) renderIRI(iri rdf.IRI) string {
	if iri == rdf.RDFType {
		return "a"
	}
	if s.Prefixes != nil {
		compact := s.Prefixes.Compact(iri)
		if compact != string(iri) && isSafeLocalPart(compact) {
			return compact
		}
	}
	return iri.String()
}

// isSafeLocalPart reports whether a compacted name is safe to emit without
// escaping (no characters that would confuse the Turtle lexer).
func isSafeLocalPart(s string) bool {
	return !strings.ContainsAny(s, " \t\n<>\"{}|^`\\")
}
