package turtle

import (
	"strings"
	"testing"

	"bdi/internal/rdf"
)

func TestParseSimpleTriples(t *testing.T) {
	doc, err := Parse(`
@prefix ex: <http://example.org/> .
ex:s ex:p ex:o .
ex:s ex:q "hello" .
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Quads) != 2 {
		t.Fatalf("expected 2 quads, got %d", len(doc.Quads))
	}
	first := doc.Quads[0]
	if first.Subject.Value() != "http://example.org/s" {
		t.Errorf("subject = %v", first.Subject)
	}
	if first.Graph != "" {
		t.Errorf("expected default graph, got %v", first.Graph)
	}
}

func TestParsePredicateObjectLists(t *testing.T) {
	doc, err := Parse(`
@prefix ex: <http://example.org/> .
ex:s a ex:Class ;
     ex:p ex:o1 , ex:o2 ;
     ex:q "v" .
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Quads) != 4 {
		t.Fatalf("expected 4 quads, got %d: %v", len(doc.Quads), doc.Quads)
	}
	if !doc.Quads[0].Predicate.Equal(rdf.RDFType) {
		t.Errorf("'a' should expand to rdf:type, got %v", doc.Quads[0].Predicate)
	}
}

func TestParsePaperGlobalVocabulary(t *testing.T) {
	// The metadata model for G from Code 6 of the paper (abridged).
	input := `
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix voaf: <http://purl.org/vocommons/voaf#> .
@prefix vann: <http://purl.org/vocab/vann/> .
@prefix G: <http://www.essi.upc.edu/~snadal/BDIOntology/Global/> .

<http://www.essi.upc.edu/~snadal/BDIOntology/Global/> rdf:type voaf:Vocabulary ;
  vann:preferredNamespacePrefix "G" ;
  rdfs:label "The Global graph vocabulary" .

G:Concept rdf:type rdfs:Class ;
  rdfs:isDefinedBy <http://www.essi.upc.edu/~snadal/BDIOntology/Global/> .

G:hasFeature rdf:type rdf:Property ;
  rdfs:domain G:Concept ;
  rdfs:range G:Feature .
`
	doc, err := Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Quads) != 8 {
		t.Fatalf("expected 8 quads, got %d", len(doc.Quads))
	}
	// Check prefix resolution.
	found := false
	for _, q := range doc.Quads {
		if q.Subject.Value() == "http://www.essi.upc.edu/~snadal/BDIOntology/Global/hasFeature" &&
			q.Predicate.Equal(rdf.RDFSDomain) {
			found = true
		}
	}
	if !found {
		t.Error("expected G:hasFeature rdfs:domain triple")
	}
}

func TestParseLiteralsWithDatatypesAndLang(t *testing.T) {
	doc, err := Parse(`
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:m ex:lagRatio "0.75"^^xsd:double .
ex:m ex:count 42 .
ex:m ex:ratio 0.9 .
ex:m ex:active true .
ex:m ex:label "hola"@es .
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Quads) != 5 {
		t.Fatalf("expected 5 quads, got %d", len(doc.Quads))
	}
	byPred := map[string]rdf.Term{}
	for _, q := range doc.Quads {
		byPred[rdf.IRI(q.Predicate.Value()).LocalName()] = q.Object
	}
	if l := byPred["lagRatio"].(rdf.Literal); l.Datatype != rdf.XSDDouble {
		t.Errorf("lagRatio datatype = %v", l.Datatype)
	}
	if l := byPred["count"].(rdf.Literal); l.Datatype != rdf.XSDInteger {
		t.Errorf("count datatype = %v", l.Datatype)
	}
	if l := byPred["active"].(rdf.Literal); l.Datatype != rdf.XSDBoolean {
		t.Errorf("active datatype = %v", l.Datatype)
	}
	if l := byPred["label"].(rdf.Literal); l.Lang != "es" {
		t.Errorf("label lang = %v", l.Lang)
	}
}

func TestParseTriGGraphBlocks(t *testing.T) {
	doc, err := Parse(`
@prefix ex: <http://example.org/> .
ex:defaultS ex:p ex:o .
GRAPH ex:w1 {
  ex:Monitor ex:hasFeature ex:monitorId .
  ex:InfoMonitor ex:hasFeature ex:lagRatio .
}
ex:w2 {
  ex:FeedbackGathering ex:hasFeature ex:fgId .
}
`)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, q := range doc.Quads {
		counts[string(q.Graph)]++
	}
	if counts[""] != 1 {
		t.Errorf("default graph quads = %d, want 1", counts[""])
	}
	if counts["http://example.org/w1"] != 2 {
		t.Errorf("w1 quads = %d, want 2", counts["http://example.org/w1"])
	}
	if counts["http://example.org/w2"] != 1 {
		t.Errorf("w2 quads = %d, want 1", counts["http://example.org/w2"])
	}
}

func TestParseBlankNodesAndComments(t *testing.T) {
	doc, err := Parse(`
@prefix ex: <http://example.org/> .
# a comment line
_:b1 ex:p ex:o . # trailing comment
ex:s ex:q _:b1 .
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Quads) != 2 {
		t.Fatalf("expected 2 quads, got %d", len(doc.Quads))
	}
	if doc.Quads[0].Subject.Kind() != rdf.KindBlank {
		t.Errorf("expected blank node subject, got %v", doc.Quads[0].Subject)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<http://unterminated`,
		`@prefix ex <http://example.org/> .`,
		`ex:s ex:p "unterminated .`,
		`GRAPH <http://g> { <http://s> <http://p> <http://o> .`,
	}
	for i, input := range cases {
		if _, err := Parse(input); err == nil {
			t.Errorf("case %d: expected a parse error", i)
		}
	}
}

func TestParseTriplesRejectsNamedGraphs(t *testing.T) {
	if _, err := ParseTriples(`GRAPH <http://g> { <http://s> <http://p> <http://o> . }`); err == nil {
		t.Error("expected error for named graph in triples-only parse")
	}
	triples, err := ParseTriples(`<http://s> <http://p> <http://o> .`)
	if err != nil || len(triples) != 1 {
		t.Errorf("unexpected result %v, %v", triples, err)
	}
}

func TestSerializerRoundTrip(t *testing.T) {
	input := `
@prefix ex: <http://example.org/> .
ex:s ex:p ex:o .
ex:s ex:q "value with \"quotes\" and\nnewline" .
ex:s ex:r "0.5"^^<http://www.w3.org/2001/XMLSchema#double> .
GRAPH ex:g1 {
  ex:a ex:b ex:c .
}
`
	doc, err := Parse(input)
	if err != nil {
		t.Fatal(err)
	}
	ser := NewSerializer()
	ser.Prefixes.Bind("ex", "http://example.org/")
	out := ser.SerializeQuads(doc.Quads)

	doc2, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\noutput:\n%s", err, out)
	}
	if len(doc2.Quads) != len(doc.Quads) {
		t.Fatalf("round trip changed quad count: %d -> %d\n%s", len(doc.Quads), len(doc2.Quads), out)
	}
	for _, q := range doc.Quads {
		found := false
		for _, q2 := range doc2.Quads {
			if q.Equal(q2) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("quad lost in round trip: %v\noutput:\n%s", q, out)
		}
	}
}

func TestSerializeNTriples(t *testing.T) {
	triples := []rdf.Triple{
		rdf.T("http://ex/s", "http://ex/p", "http://ex/o"),
		rdf.T("http://ex/a", "http://ex/b", "http://ex/c"),
	}
	out := SerializeNTriples(triples)
	if !strings.HasPrefix(out, "<http://ex/a>") {
		t.Errorf("output should be sorted: %q", out)
	}
	if strings.Count(out, " .") != 2 {
		t.Errorf("expected two statements: %q", out)
	}
}

func TestSerializerUngrouped(t *testing.T) {
	ser := NewSerializer()
	ser.GroupBySubject = false
	out := ser.SerializeTriples([]rdf.Triple{
		rdf.T("http://ex/s", "http://ex/p", "http://ex/o"),
		rdf.T("http://ex/s", "http://ex/q", "http://ex/o2"),
	})
	if strings.Contains(out, ";") {
		t.Errorf("ungrouped output should not contain ';': %q", out)
	}
}
