package rdf

import (
	"testing"
	"testing/quick"
)

func exampleTriples() []Triple {
	return []Triple{
		T("http://ex/app", "http://ex/hasMonitor", "http://ex/monitor"),
		T("http://ex/monitor", "http://ex/generatesQoS", "http://ex/info"),
		NewTriple(IRI("http://ex/info"), IRI("http://ex/hasFeature"), IRI("http://ex/lagRatio")),
	}
}

func TestTripleValidate(t *testing.T) {
	valid := T("http://ex/s", "http://ex/p", "http://ex/o")
	if err := valid.Validate(); err != nil {
		t.Errorf("valid triple rejected: %v", err)
	}
	cases := []Triple{
		{Subject: nil, Predicate: IRI("p"), Object: IRI("o")},
		{Subject: NewLiteral("s"), Predicate: IRI("p"), Object: IRI("o")},
		{Subject: IRI("s"), Predicate: NewBlankNode("p"), Object: IRI("o")},
		{Subject: IRI("s"), Predicate: IRI("p"), Object: NewVariable("o")},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid triple accepted: %v", i, c)
		}
	}
}

func TestTripleIsGroundAndEqual(t *testing.T) {
	g := T("http://ex/s", "http://ex/p", "http://ex/o")
	if !g.IsGround() {
		t.Error("triple should be ground")
	}
	v := NewTriple(NewVariable("s"), IRI("http://ex/p"), IRI("http://ex/o"))
	if v.IsGround() {
		t.Error("triple with variable should not be ground")
	}
	if !g.Equal(T("http://ex/s", "http://ex/p", "http://ex/o")) {
		t.Error("identical triples should be equal")
	}
	if g.Equal(v) {
		t.Error("different triples should not be equal")
	}
}

func TestQuadString(t *testing.T) {
	q := Q("http://ex/s", "http://ex/p", "http://ex/o", "http://ex/g")
	if q.String() == q.Triple.String() {
		t.Error("named-graph quad should serialize differently from its triple")
	}
	dq := NewQuad(T("http://ex/s", "http://ex/p", "http://ex/o"), "")
	if dq.String() != dq.Triple.String() {
		t.Error("default-graph quad should serialize as a triple")
	}
}

func TestGraphAddDeduplicates(t *testing.T) {
	g := NewGraph("http://ex/g")
	tr := T("http://ex/s", "http://ex/p", "http://ex/o")
	g.Add(tr, tr, tr)
	if g.Len() != 1 {
		t.Errorf("expected 1 triple after duplicates, got %d", g.Len())
	}
	if !g.Contains(tr) {
		t.Error("graph should contain added triple")
	}
}

func TestGraphNodeAccessors(t *testing.T) {
	g := NewGraph("")
	g.Add(exampleTriples()...)
	if len(g.Subjects()) != 3 {
		t.Errorf("subjects = %d, want 3", len(g.Subjects()))
	}
	if len(g.Predicates()) != 3 {
		t.Errorf("predicates = %d, want 3", len(g.Predicates()))
	}
	if len(g.Nodes()) != 4 {
		t.Errorf("nodes = %d, want 4", len(g.Nodes()))
	}
	if !g.ContainsNode(IRI("http://ex/lagRatio")) {
		t.Error("lagRatio should be a node")
	}
	if g.ContainsNode(IRI("http://ex/absent")) {
		t.Error("absent node reported present")
	}
	if len(g.OutgoingEdges(IRI("http://ex/monitor"))) != 1 {
		t.Error("monitor should have one outgoing edge")
	}
	if len(g.IncomingEdges(IRI("http://ex/monitor"))) != 1 {
		t.Error("monitor should have one incoming edge")
	}
}

func TestGraphSubsumesAndEqual(t *testing.T) {
	g := NewGraph("")
	g.Add(exampleTriples()...)
	sub := NewGraph("")
	sub.Add(exampleTriples()[0])
	if !g.Subsumes(sub) {
		t.Error("g should subsume its subset")
	}
	if sub.Subsumes(g) {
		t.Error("subset should not subsume superset")
	}
	clone := g.Clone()
	if !g.Equal(clone) {
		t.Error("clone should equal original")
	}
	clone.Add(T("http://ex/x", "http://ex/y", "http://ex/z"))
	if g.Equal(clone) {
		t.Error("modified clone should differ")
	}
}

func TestGraphMerge(t *testing.T) {
	a := NewGraph("")
	a.Add(exampleTriples()[0])
	b := NewGraph("")
	b.Add(exampleTriples()[1], exampleTriples()[0])
	a.Merge(b)
	if a.Len() != 2 {
		t.Errorf("merged length = %d, want 2", a.Len())
	}
	a.Merge(nil)
	if a.Len() != 2 {
		t.Error("merging nil should not change the graph")
	}
}

func TestGraphIsConnected(t *testing.T) {
	g := NewGraph("")
	g.Add(exampleTriples()...)
	if !g.IsConnected() {
		t.Error("chain graph should be connected")
	}
	g.Add(T("http://ex/isolated1", "http://ex/p", "http://ex/isolated2"))
	if g.IsConnected() {
		t.Error("graph with an isolated component should not be connected")
	}
	empty := NewGraph("")
	if !empty.IsConnected() {
		t.Error("empty graph is trivially connected")
	}
}

func TestGraphTopologicalSort(t *testing.T) {
	g := NewGraph("")
	g.Add(exampleTriples()...)
	order, ok := g.TopologicalSort()
	if !ok {
		t.Fatal("acyclic graph should have a topological sort")
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[TermKey(n)] = i
	}
	if pos[TermKey(IRI("http://ex/app"))] > pos[TermKey(IRI("http://ex/monitor"))] {
		t.Error("app should come before monitor")
	}
	// Add a cycle.
	g.Add(T("http://ex/lagRatio", "http://ex/back", "http://ex/app"))
	if _, ok := g.TopologicalSort(); ok {
		t.Error("cyclic graph should not have a topological sort")
	}
}

func TestGraphStringDeterministic(t *testing.T) {
	g1 := NewGraph("")
	g1.Add(exampleTriples()...)
	g2 := NewGraph("")
	ts := exampleTriples()
	for i := len(ts) - 1; i >= 0; i-- {
		g2.Add(ts[i])
	}
	if g1.String() != g2.String() {
		t.Error("graph String should be order-insensitive")
	}
}

func TestGraphSubsumesProperty(t *testing.T) {
	// Property: any graph subsumes every graph constructed from a subset of
	// its triples.
	f := func(picks []bool) bool {
		full := NewGraph("")
		full.Add(exampleTriples()...)
		sub := NewGraph("")
		for i, take := range picks {
			if take && i < len(exampleTriples()) {
				sub.Add(exampleTriples()[i])
			}
		}
		return full.Subsumes(sub)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
