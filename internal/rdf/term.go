// Package rdf implements the RDF 1.1 data model used throughout the BDI
// ontology: IRIs, literals, blank nodes, triples and quads, together with
// prefix management and the XSD datatypes referenced by the Global graph.
//
// The package is deliberately self-contained (standard library only) and is
// the foundation for the quad store (internal/store), the RDFS reasoner
// (internal/reasoner) and the SPARQL subset evaluator (internal/sparql).
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind identifies the concrete kind of an RDF term.
type TermKind int

const (
	// KindIRI identifies an IRI term.
	KindIRI TermKind = iota
	// KindLiteral identifies a literal term (plain, typed or language tagged).
	KindLiteral
	// KindBlank identifies a blank node.
	KindBlank
	// KindVariable identifies a query variable. Variables are not valid in
	// stored triples but are needed for SPARQL patterns and the rewriting
	// algorithms that manipulate them.
	KindVariable
)

// String returns a human readable name of the kind.
func (k TermKind) String() string {
	switch k {
	case KindIRI:
		return "IRI"
	case KindLiteral:
		return "Literal"
	case KindBlank:
		return "BlankNode"
	case KindVariable:
		return "Variable"
	default:
		return fmt.Sprintf("TermKind(%d)", int(k))
	}
}

// Term is the interface implemented by all RDF terms.
type Term interface {
	// Kind reports the concrete kind of the term.
	Kind() TermKind
	// Value returns the lexical value of the term: the IRI string, the
	// literal's lexical form, the blank node identifier or the variable name.
	Value() string
	// String returns the N-Triples-like serialization of the term.
	String() string
	// Equal reports whether the receiver and other denote the same term.
	Equal(other Term) bool
}

// IRI is an absolute or prefixed IRI reference.
type IRI string

// NewIRI returns an IRI term for the given string.
func NewIRI(value string) IRI { return IRI(value) }

// Kind implements Term.
func (i IRI) Kind() TermKind { return KindIRI }

// Value implements Term.
func (i IRI) Value() string { return string(i) }

// String implements Term using angle-bracket notation.
func (i IRI) String() string { return "<" + string(i) + ">" }

// Equal implements Term.
func (i IRI) Equal(other Term) bool {
	o, ok := other.(IRI)
	return ok && o == i
}

// LocalName returns the fragment of the IRI after the last '#', '/' or ':'.
func (i IRI) LocalName() string {
	s := string(i)
	for _, sep := range []string{"#", "/", ":"} {
		if idx := strings.LastIndex(s, sep); idx >= 0 && idx+1 < len(s) {
			s = s[idx+1:]
		}
	}
	return s
}

// Namespace returns the IRI up to and including the last '#' or '/'.
func (i IRI) Namespace() string {
	s := string(i)
	if idx := strings.LastIndexAny(s, "#/"); idx >= 0 {
		return s[:idx+1]
	}
	return ""
}

// Literal is an RDF literal with an optional datatype and language tag.
type Literal struct {
	Lexical  string
	Datatype IRI
	Lang     string
}

// NewLiteral returns a plain string literal (xsd:string).
func NewLiteral(lexical string) Literal {
	return Literal{Lexical: lexical, Datatype: XSDString}
}

// NewTypedLiteral returns a literal with an explicit datatype.
func NewTypedLiteral(lexical string, datatype IRI) Literal {
	return Literal{Lexical: lexical, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged literal (rdf:langString).
func NewLangLiteral(lexical, lang string) Literal {
	return Literal{Lexical: lexical, Datatype: RDFLangString, Lang: lang}
}

// NewIntegerLiteral returns an xsd:integer literal.
func NewIntegerLiteral(v int64) Literal {
	return Literal{Lexical: strconv.FormatInt(v, 10), Datatype: XSDInteger}
}

// NewDoubleLiteral returns an xsd:double literal.
func NewDoubleLiteral(v float64) Literal {
	return Literal{Lexical: strconv.FormatFloat(v, 'g', -1, 64), Datatype: XSDDouble}
}

// NewBooleanLiteral returns an xsd:boolean literal.
func NewBooleanLiteral(v bool) Literal {
	return Literal{Lexical: strconv.FormatBool(v), Datatype: XSDBoolean}
}

// Kind implements Term.
func (l Literal) Kind() TermKind { return KindLiteral }

// Value implements Term.
func (l Literal) Value() string { return l.Lexical }

// String implements Term using N-Triples notation.
func (l Literal) String() string {
	var b strings.Builder
	b.WriteByte('"')
	b.WriteString(escapeLiteral(l.Lexical))
	b.WriteByte('"')
	if l.Lang != "" {
		b.WriteByte('@')
		b.WriteString(l.Lang)
		return b.String()
	}
	if l.Datatype != "" && l.Datatype != XSDString {
		b.WriteString("^^")
		b.WriteString(l.Datatype.String())
	}
	return b.String()
}

// Equal implements Term.
func (l Literal) Equal(other Term) bool {
	o, ok := other.(Literal)
	if !ok {
		return false
	}
	ld, od := l.Datatype, o.Datatype
	if ld == "" {
		ld = XSDString
	}
	if od == "" {
		od = XSDString
	}
	return l.Lexical == o.Lexical && ld == od && l.Lang == o.Lang
}

// Integer returns the literal parsed as an int64, if its datatype is numeric.
func (l Literal) Integer() (int64, bool) {
	switch l.Datatype {
	case XSDInteger, XSDInt, XSDLong, XSDShort, XSDByte, XSDNonNegativeInteger, XSDPositiveInteger:
		v, err := strconv.ParseInt(l.Lexical, 10, 64)
		return v, err == nil
	}
	return 0, false
}

// Float returns the literal parsed as a float64, if its datatype is numeric.
func (l Literal) Float() (float64, bool) {
	switch l.Datatype {
	case XSDDouble, XSDFloat, XSDDecimal, XSDInteger, XSDInt, XSDLong:
		v, err := strconv.ParseFloat(l.Lexical, 64)
		return v, err == nil
	}
	return 0, false
}

// Bool returns the literal parsed as a bool, if its datatype is xsd:boolean.
func (l Literal) Bool() (bool, bool) {
	if l.Datatype != XSDBoolean {
		return false, false
	}
	v, err := strconv.ParseBool(l.Lexical)
	return v, err == nil
}

// BlankNode is an RDF blank node, identified by a local label.
type BlankNode string

// NewBlankNode returns a blank node with the given label.
func NewBlankNode(label string) BlankNode { return BlankNode(label) }

// Kind implements Term.
func (b BlankNode) Kind() TermKind { return KindBlank }

// Value implements Term.
func (b BlankNode) Value() string { return string(b) }

// String implements Term using N-Triples notation.
func (b BlankNode) String() string { return "_:" + string(b) }

// Equal implements Term.
func (b BlankNode) Equal(other Term) bool {
	o, ok := other.(BlankNode)
	return ok && o == b
}

// Variable is a SPARQL query variable. Variables never appear in stored data;
// they are used by query patterns and by the rewriting algorithms.
type Variable string

// NewVariable returns a variable with the given name (without leading '?').
func NewVariable(name string) Variable { return Variable(name) }

// Kind implements Term.
func (v Variable) Kind() TermKind { return KindVariable }

// Value implements Term.
func (v Variable) Value() string { return string(v) }

// String implements Term using SPARQL notation.
func (v Variable) String() string { return "?" + string(v) }

// Equal implements Term.
func (v Variable) Equal(other Term) bool {
	o, ok := other.(Variable)
	return ok && o == v
}

// IsConcrete reports whether t is a term that may appear in stored data
// (IRI, literal or blank node).
func IsConcrete(t Term) bool {
	if t == nil {
		return false
	}
	return t.Kind() != KindVariable
}

// IsIRI reports whether t is an IRI.
func IsIRI(t Term) bool { return t != nil && t.Kind() == KindIRI }

// IsLiteral reports whether t is a literal.
func IsLiteral(t Term) bool { return t != nil && t.Kind() == KindLiteral }

// IsBlank reports whether t is a blank node.
func IsBlank(t Term) bool { return t != nil && t.Kind() == KindBlank }

// IsVariable reports whether t is a query variable.
func IsVariable(t Term) bool { return t != nil && t.Kind() == KindVariable }

// CompareTerms imposes a total order over terms: IRIs < blank nodes <
// literals < variables, then lexicographically by value (and datatype/lang
// for literals). It is used to produce deterministic output orderings.
func CompareTerms(a, b Term) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	ka, kb := kindRank(a.Kind()), kindRank(b.Kind())
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	if c := strings.Compare(a.Value(), b.Value()); c != 0 {
		return c
	}
	la, aok := a.(Literal)
	lb, bok := b.(Literal)
	if aok && bok {
		if c := strings.Compare(string(la.Datatype), string(lb.Datatype)); c != 0 {
			return c
		}
		return strings.Compare(la.Lang, lb.Lang)
	}
	return 0
}

func kindRank(k TermKind) int {
	switch k {
	case KindIRI:
		return 0
	case KindBlank:
		return 1
	case KindLiteral:
		return 2
	default:
		return 3
	}
}

func escapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// UnescapeLiteral reverses the escaping performed by escapeLiteral. It is
// exported for use by the Turtle parser.
func UnescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' || i+1 >= len(s) {
			b.WriteByte(c)
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case 'u':
			if i+4 < len(s) {
				if v, err := strconv.ParseInt(s[i+1:i+5], 16, 32); err == nil {
					b.WriteRune(rune(v))
					i += 4
					continue
				}
			}
			b.WriteByte(s[i])
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
