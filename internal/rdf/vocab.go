package rdf

// Well-known namespaces used by the BDI ontology and its vocabularies.
const (
	// NSRDF is the RDF namespace.
	NSRDF = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	// NSRDFS is the RDF Schema namespace.
	NSRDFS = "http://www.w3.org/2000/01/rdf-schema#"
	// NSOWL is the OWL namespace.
	NSOWL = "http://www.w3.org/2002/07/owl#"
	// NSXSD is the XML Schema datatypes namespace.
	NSXSD = "http://www.w3.org/2001/XMLSchema#"
	// NSVOAF is the Vocabulary of a Friend namespace used by the paper's
	// vocabulary declarations.
	NSVOAF = "http://purl.org/vocommons/voaf#"
	// NSVANN is the vocabulary annotation namespace.
	NSVANN = "http://purl.org/vocab/vann/"
	// NSDUV is the W3C Dataset Usage Vocabulary namespace, reused by the
	// SUPERSEDE case study for feedback elements.
	NSDUV = "https://www.w3.org/TR/vocab-duv#"
	// NSDCT is the Dublin Core terms namespace.
	NSDCT = "http://purl.org/dc/terms/"
	// NSSchema is the schema.org namespace (prefix sc in the paper).
	NSSchema = "http://schema.org/"
)

// RDF vocabulary terms.
var (
	RDFType       = IRI(NSRDF + "type")
	RDFProperty   = IRI(NSRDF + "Property")
	RDFLangString = IRI(NSRDF + "langString")
	RDFNil        = IRI(NSRDF + "nil")
	RDFFirst      = IRI(NSRDF + "first")
	RDFRest       = IRI(NSRDF + "rest")
)

// RDFS vocabulary terms.
var (
	RDFSClass         = IRI(NSRDFS + "Class")
	RDFSResource      = IRI(NSRDFS + "Resource")
	RDFSLiteral       = IRI(NSRDFS + "Literal")
	RDFSDatatype      = IRI(NSRDFS + "Datatype")
	RDFSSubClassOf    = IRI(NSRDFS + "subClassOf")
	RDFSSubPropertyOf = IRI(NSRDFS + "subPropertyOf")
	RDFSDomain        = IRI(NSRDFS + "domain")
	RDFSRange         = IRI(NSRDFS + "range")
	RDFSLabel         = IRI(NSRDFS + "label")
	RDFSComment       = IRI(NSRDFS + "comment")
	RDFSIsDefinedBy   = IRI(NSRDFS + "isDefinedBy")
	RDFSSeeAlso       = IRI(NSRDFS + "seeAlso")
)

// OWL vocabulary terms.
var (
	OWLSameAs             = IRI(NSOWL + "sameAs")
	OWLClass              = IRI(NSOWL + "Class")
	OWLObjectProperty     = IRI(NSOWL + "ObjectProperty")
	OWLDatatypeProperty   = IRI(NSOWL + "DatatypeProperty")
	OWLEquivalentClass    = IRI(NSOWL + "equivalentClass")
	OWLEquivalentProperty = IRI(NSOWL + "equivalentProperty")
)

// XSD datatypes.
var (
	XSDString             = IRI(NSXSD + "string")
	XSDBoolean            = IRI(NSXSD + "boolean")
	XSDInteger            = IRI(NSXSD + "integer")
	XSDInt                = IRI(NSXSD + "int")
	XSDLong               = IRI(NSXSD + "long")
	XSDShort              = IRI(NSXSD + "short")
	XSDByte               = IRI(NSXSD + "byte")
	XSDDecimal            = IRI(NSXSD + "decimal")
	XSDFloat              = IRI(NSXSD + "float")
	XSDDouble             = IRI(NSXSD + "double")
	XSDDateTime           = IRI(NSXSD + "dateTime")
	XSDDate               = IRI(NSXSD + "date")
	XSDTime               = IRI(NSXSD + "time")
	XSDAnyURI             = IRI(NSXSD + "anyURI")
	XSDNonNegativeInteger = IRI(NSXSD + "nonNegativeInteger")
	XSDPositiveInteger    = IRI(NSXSD + "positiveInteger")
	XSDDuration           = IRI(NSXSD + "duration")
)

// VOAF / VANN vocabulary terms used by the metadata models in Codes 6 and 7.
var (
	VOAFVocabulary               = IRI(NSVOAF + "Vocabulary")
	VANNPreferredNamespacePrefix = IRI(NSVANN + "preferredNamespacePrefix")
	VANNPreferredNamespaceURI    = IRI(NSVANN + "preferredNamespaceUri")
)

// Schema.org terms used by the running example.
var (
	SchemaIdentifier          = IRI(NSSchema + "identifier")
	SchemaSoftwareApplication = IRI(NSSchema + "SoftwareApplication")
)

// IsXSDDatatype reports whether iri is one of the XML Schema built-in
// datatypes supported for feature typing in the Global graph.
func IsXSDDatatype(iri IRI) bool {
	switch iri {
	case XSDString, XSDBoolean, XSDInteger, XSDInt, XSDLong, XSDShort, XSDByte,
		XSDDecimal, XSDFloat, XSDDouble, XSDDateTime, XSDDate, XSDTime,
		XSDAnyURI, XSDNonNegativeInteger, XSDPositiveInteger, XSDDuration:
		return true
	}
	return false
}
