package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// PrefixMap maintains a bidirectional mapping between namespace prefixes and
// namespace IRIs, as used in Turtle documents and for compact (CURIE-style)
// rendering of IRIs in logs and tables.
type PrefixMap struct {
	prefixToNS map[string]string
	nsToPrefix map[string]string
}

// NewPrefixMap returns an empty prefix map.
func NewPrefixMap() *PrefixMap {
	return &PrefixMap{
		prefixToNS: map[string]string{},
		nsToPrefix: map[string]string{},
	}
}

// DefaultPrefixes returns a prefix map preloaded with the namespaces used by
// the BDI ontology and the SUPERSEDE running example.
func DefaultPrefixes() *PrefixMap {
	pm := NewPrefixMap()
	pm.Bind("rdf", NSRDF)
	pm.Bind("rdfs", NSRDFS)
	pm.Bind("owl", NSOWL)
	pm.Bind("xsd", NSXSD)
	pm.Bind("voaf", NSVOAF)
	pm.Bind("vann", NSVANN)
	pm.Bind("duv", NSDUV)
	pm.Bind("dct", NSDCT)
	pm.Bind("sc", NSSchema)
	return pm
}

// Bind associates prefix with namespace ns, replacing any prior binding of
// that prefix.
func (p *PrefixMap) Bind(prefix, ns string) {
	if old, ok := p.prefixToNS[prefix]; ok {
		delete(p.nsToPrefix, old)
	}
	p.prefixToNS[prefix] = ns
	p.nsToPrefix[ns] = prefix
}

// Expand resolves a CURIE of the form "prefix:local" to a full IRI. If the
// input already looks like an absolute IRI (or the prefix is unknown) it is
// returned unchanged along with ok=false.
func (p *PrefixMap) Expand(curie string) (IRI, bool) {
	idx := strings.Index(curie, ":")
	if idx < 0 {
		return IRI(curie), false
	}
	prefix, local := curie[:idx], curie[idx+1:]
	if strings.HasPrefix(local, "//") {
		// absolute IRI like http://...
		return IRI(curie), false
	}
	ns, ok := p.prefixToNS[prefix]
	if !ok {
		return IRI(curie), false
	}
	return IRI(ns + local), true
}

// Compact renders the given IRI as "prefix:local" when a namespace binding
// matches, or the full IRI otherwise.
func (p *PrefixMap) Compact(iri IRI) string {
	s := string(iri)
	best := ""
	bestPrefix := ""
	for ns, prefix := range p.nsToPrefix {
		if strings.HasPrefix(s, ns) && len(ns) > len(best) {
			best, bestPrefix = ns, prefix
		}
	}
	if best == "" {
		return s
	}
	return bestPrefix + ":" + s[len(best):]
}

// CompactTerm renders any term compactly: IRIs via Compact, literals and
// blank nodes via their native serialization.
func (p *PrefixMap) CompactTerm(t Term) string {
	if t == nil {
		return "<nil>"
	}
	if iri, ok := t.(IRI); ok {
		return p.Compact(iri)
	}
	return t.String()
}

// Namespace returns the namespace bound to prefix.
func (p *PrefixMap) Namespace(prefix string) (string, bool) {
	ns, ok := p.prefixToNS[prefix]
	return ns, ok
}

// Prefix returns the prefix bound to namespace ns.
func (p *PrefixMap) Prefix(ns string) (string, bool) {
	prefix, ok := p.nsToPrefix[ns]
	return prefix, ok
}

// Prefixes returns all bound prefixes in sorted order.
func (p *PrefixMap) Prefixes() []string {
	out := make([]string, 0, len(p.prefixToNS))
	for prefix := range p.prefixToNS {
		out = append(out, prefix)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the prefix map.
func (p *PrefixMap) Clone() *PrefixMap {
	c := NewPrefixMap()
	for prefix, ns := range p.prefixToNS {
		c.Bind(prefix, ns)
	}
	return c
}

// TurtleHeader renders the prefix map as Turtle @prefix declarations.
func (p *PrefixMap) TurtleHeader() string {
	var b strings.Builder
	for _, prefix := range p.Prefixes() {
		fmt.Fprintf(&b, "@prefix %s: <%s> .\n", prefix, p.prefixToNS[prefix])
	}
	return b.String()
}
