package core

import (
	"slices"
	"testing"

	"bdi/internal/rdf"
)

func mustBuildSupersede(t *testing.T) *Ontology {
	t.Helper()
	o := NewOntology()
	if err := BuildSupersedeGlobalGraph(o); err != nil {
		t.Fatal(err)
	}
	return o
}

func containsIRI(s []rdf.IRI, iri rdf.IRI) bool { return slices.Contains(s, iri) }

func TestReleaseDeltaW1(t *testing.T) {
	o := mustBuildSupersede(t)
	res, err := o.NewRelease(SupersedeReleaseW1())
	if err != nil {
		t.Fatal(err)
	}
	d := res.Delta
	if d == nil {
		t.Fatal("release result carries no delta")
	}
	if d.Wrapper != WrapperURI("w1") || d.Source != SourceURI("D1") {
		t.Errorf("delta identity = %s / %s", d.Wrapper, d.Source)
	}
	if d.Sequence != res.Sequence {
		t.Errorf("delta sequence = %d, release sequence = %d", d.Sequence, res.Sequence)
	}
	// W1's LAV subgraph covers Monitor and InfoMonitor with monitorId and
	// lagRatio, plus the generatesQoS edge.
	for _, c := range []rdf.IRI{SupMonitor, SupInfoMonitor} {
		if !containsIRI(d.Concepts, c) {
			t.Errorf("delta concepts %v miss %s", d.Concepts, c)
		}
	}
	for _, f := range []rdf.IRI{SupMonitorID, SupLagRatio} {
		if !containsIRI(d.Features, f) {
			t.Errorf("delta features %v miss %s", d.Features, f)
		}
	}
	if containsIRI(d.Concepts, SupUserFeedback) || containsIRI(d.Features, SupDescription) {
		t.Errorf("delta leaks untouched elements: %v / %v", d.Concepts, d.Features)
	}
	wantEdge := [2]rdf.IRI{SupMonitor, SupInfoMonitor}
	if !slices.Contains(d.Edges, wantEdge) {
		t.Errorf("delta edges %v miss %v", d.Edges, wantEdge)
	}
	if !d.Touches(SupMonitor) || !d.Touches(SupLagRatio) || d.Touches(SupUserFeedback) {
		t.Error("Touches misclassifies delta membership")
	}
}

func TestReleaseDeltaAttributeReuse(t *testing.T) {
	// A release of a new schema version for the same source reuses the
	// attribute URIs; its delta must include the features those attributes
	// were already linked to (a new owl:sameAs link can change how an
	// existing attribute resolves) — not only the range of its own F.
	o := mustBuildSupersede(t)
	if _, err := o.NewRelease(SupersedeReleaseW1()); err != nil {
		t.Fatal(err)
	}
	other := rdf.IRI(NSSupersede + "otherFeature")
	if err := o.AddFeatureTo(SupInfoMonitor, other, rdf.XSDDouble); err != nil {
		t.Fatal(err)
	}
	// w1b reuses D1's lagRatio attribute but maps it to the new feature.
	release := Release{
		Wrapper: WrapperSpec{
			Name:            "w1b",
			Source:          "D1",
			IDAttributes:    []string{"VoDmonitorId"},
			NonIDAttributes: []string{"lagRatio"},
		},
		Subgraph: func() *rdf.Graph {
			g := rdf.NewGraph("")
			g.Add(
				rdf.T(SupMonitor, GHasFeature, SupMonitorID),
				rdf.T(SupInfoMonitor, GHasFeature, other),
			)
			return g
		}(),
		F: map[string]rdf.IRI{
			"VoDmonitorId": SupMonitorID,
			"lagRatio":     other,
		},
	}
	res, err := o.NewRelease(release)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ReusedAttributes) != 2 {
		t.Fatalf("reused attributes = %v", res.ReusedAttributes)
	}
	d := res.Delta
	if !containsIRI(d.Features, other) {
		t.Errorf("delta misses the newly mapped feature: %v", d.Features)
	}
	// lagRatio is the feature the reused attribute was previously linked to.
	if !containsIRI(d.Features, SupLagRatio) {
		t.Errorf("delta misses the prior feature of the reused attribute: %v", d.Features)
	}
	// ... and its owning concept must be marked too.
	if !containsIRI(d.Concepts, SupInfoMonitor) {
		t.Errorf("delta misses the owner of an affected feature: %v", d.Concepts)
	}
}

func TestReleaseDeltaSameAsOnlyRelease(t *testing.T) {
	// A release whose LAV subgraph repeats already-registered triples adds
	// (almost) nothing to the store beyond owl:sameAs links and wrapper
	// bookkeeping — its delta must still name the mapped features and their
	// concepts so caches drop the affected rewritings.
	o := mustBuildSupersede(t)
	if _, err := o.NewRelease(SupersedeReleaseW1()); err != nil {
		t.Fatal(err)
	}
	release := Release{
		Wrapper: WrapperSpec{
			Name:         "w1sameas",
			Source:       "D9",
			IDAttributes: []string{"mid"},
		},
		Subgraph: func() *rdf.Graph {
			g := rdf.NewGraph("")
			g.Add(rdf.T(SupMonitor, GHasFeature, SupMonitorID))
			return g
		}(),
		F: map[string]rdf.IRI{"mid": SupMonitorID},
	}
	res, err := o.NewRelease(release)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Delta
	if !containsIRI(d.Features, SupMonitorID) || !containsIRI(d.Concepts, SupMonitor) {
		t.Errorf("sameAs-only delta = concepts %v features %v", d.Concepts, d.Features)
	}
	if containsIRI(d.Concepts, SupInfoMonitor) || containsIRI(d.Features, SupLagRatio) {
		t.Errorf("sameAs-only delta over-approximates: %v / %v", d.Concepts, d.Features)
	}
	if len(d.Edges) != 0 {
		t.Errorf("sameAs-only delta has edges: %v", d.Edges)
	}
}

func TestDeltasBetweenCoversReleaseOnlyIntervals(t *testing.T) {
	o := mustBuildSupersede(t)
	g0 := o.Store().Generation()
	r1, err := o.NewRelease(SupersedeReleaseW1())
	if err != nil {
		t.Fatal(err)
	}
	g1 := o.Store().Generation()
	r2, err := o.NewRelease(SupersedeReleaseW2())
	if err != nil {
		t.Fatal(err)
	}
	g2 := o.Store().Generation()

	deltas, ok := o.DeltasBetween(g0, g2)
	if !ok || len(deltas) != 2 {
		t.Fatalf("DeltasBetween(g0, g2) = %v, %v", deltas, ok)
	}
	if deltas[0] != r1.Delta || deltas[1] != r2.Delta {
		t.Error("deltas not returned oldest-first")
	}
	if deltas, ok := o.DeltasBetween(g1, g2); !ok || len(deltas) != 1 || deltas[0] != r2.Delta {
		t.Fatalf("DeltasBetween(g1, g2) = %v, %v", deltas, ok)
	}
	if deltas, ok := o.DeltasBetween(g2, g2); !ok || len(deltas) != 0 {
		t.Fatalf("DeltasBetween(g2, g2) = %v, %v", deltas, ok)
	}
	// Backwards intervals are never covered.
	if _, ok := o.DeltasBetween(g2, g0); ok {
		t.Error("backwards interval reported as covered")
	}
}

func TestDeltasBetweenRejectsNonReleaseMutations(t *testing.T) {
	o := mustBuildSupersede(t)
	g0 := o.Store().Generation()
	if _, err := o.NewRelease(SupersedeReleaseW1()); err != nil {
		t.Fatal(err)
	}
	// A Global-graph edit is not a release: the interval is not covered.
	if err := o.AddConcept(rdf.IRI(NSSupersede + "Extra")); err != nil {
		t.Fatal(err)
	}
	g2 := o.Store().Generation()
	if _, ok := o.DeltasBetween(g0, g2); ok {
		t.Error("interval containing a Global-graph edit reported as covered by releases")
	}
	// A release after the edit is covered from the edit onwards.
	gEdit := o.Store().Generation()
	if _, err := o.NewRelease(SupersedeReleaseW2()); err != nil {
		t.Fatal(err)
	}
	if deltas, ok := o.DeltasBetween(gEdit, o.Store().Generation()); !ok || len(deltas) != 1 {
		t.Errorf("post-edit release interval = %v, %v", deltas, ok)
	}
}

func TestFootprintIntersects(t *testing.T) {
	d := &ReleaseDelta{
		Concepts: []rdf.IRI{"b", "d"},
		Features: []rdf.IRI{"f2"},
	}
	cases := []struct {
		fp   Footprint
		want bool
	}{
		{NewFootprint([]rdf.IRI{"a", "c"}, []rdf.IRI{"f1"}), false},
		{NewFootprint([]rdf.IRI{"a", "b"}, nil), true},
		{NewFootprint(nil, []rdf.IRI{"f2"}), true},
		{NewFootprint(nil, nil), false},
		{NewFootprint([]rdf.IRI{"e"}, []rdf.IRI{"f3"}), false},
	}
	for i, c := range cases {
		if got := c.fp.Intersects(d); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
	}
	fp := NewFootprint([]rdf.IRI{"a", "b", "d"}, nil)
	touched := fp.TouchedConcepts([]*ReleaseDelta{d})
	if len(touched) != 2 || touched[0] != "b" || touched[1] != "d" {
		t.Errorf("TouchedConcepts = %v", touched)
	}
}

func TestQueryCacheSurvivesUnrelatedRelease(t *testing.T) {
	// The memoized covering-wrapper set of a W1 triple must survive a W2
	// release (disjoint concepts) without re-probing, and must be retired by
	// a release that touches its concepts.
	o := mustBuildSupersede(t)
	if _, err := o.NewRelease(SupersedeReleaseW1()); err != nil {
		t.Fatal(err)
	}
	triple := rdf.T(SupInfoMonitor, GHasFeature, SupLagRatio)
	if ws := o.WrappersCoveringTriple(triple); len(ws) != 1 || ws[0] != WrapperURI("w1") {
		t.Fatalf("covering wrappers = %v", ws)
	}
	qcBefore := o.queryCache()

	// Unrelated release: W2 covers FeedbackGathering/UserFeedback.
	if _, err := o.NewRelease(SupersedeReleaseW2()); err != nil {
		t.Fatal(err)
	}
	qcAfter := o.queryCache()
	if qcAfter == qcBefore {
		t.Fatal("query cache instance must be re-pinned to the new snapshot")
	}
	key := coveringKeyFor(t, qcAfter, triple)
	qcAfter.mu.Lock()
	_, retained := qcAfter.covering[key]
	qcAfter.mu.Unlock()
	if !retained {
		t.Error("covering entry for an untouched triple did not survive the unrelated release")
	}

	// Related release: W4 is a new D1 schema version touching InfoMonitor.
	if _, err := o.NewRelease(SupersedeReleaseW4()); err != nil {
		t.Fatal(err)
	}
	qcFinal := o.queryCache()
	qcFinal.mu.Lock()
	_, stale := qcFinal.covering[key]
	qcFinal.mu.Unlock()
	if stale {
		t.Error("covering entry touching the released concepts must be retired")
	}
	// And the fresh probe sees both wrappers.
	if ws := o.WrappersCoveringTriple(triple); len(ws) != 2 {
		t.Errorf("post-W4 covering wrappers = %v", ws)
	}
}

func coveringKeyFor(t *testing.T, qc *queryCache, tr rdf.Triple) [3]rdf.TermID {
	t.Helper()
	d := qc.snap.Dict()
	s, okS := d.Lookup(tr.Subject)
	p, okP := d.Lookup(tr.Predicate)
	o, okO := d.Lookup(tr.Object)
	if !okS || !okP || !okO {
		t.Fatal("triple terms not interned")
	}
	return [3]rdf.TermID{s, p, o}
}

func TestQueryCacheFlushedByNonReleaseMutation(t *testing.T) {
	o := mustBuildSupersede(t)
	if _, err := o.NewRelease(SupersedeReleaseW1()); err != nil {
		t.Fatal(err)
	}
	triple := rdf.T(SupInfoMonitor, GHasFeature, SupLagRatio)
	o.WrappersCoveringTriple(triple)
	key := coveringKeyFor(t, o.queryCache(), triple)
	if err := o.AddConcept(rdf.IRI(NSSupersede + "Unexplained")); err != nil {
		t.Fatal(err)
	}
	qc := o.queryCache()
	qc.mu.Lock()
	_, retained := qc.covering[key]
	qc.mu.Unlock()
	if retained {
		t.Error("non-release mutation must flush the query cache wholesale")
	}
}
