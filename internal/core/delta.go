package core

import (
	"fmt"
	"slices"
	"strings"

	"bdi/internal/rdf"
	"bdi/internal/store"
)

// ReleaseDelta is the footprint of one wrapper release: the set of ontology
// elements whose query-rewriting answers the release can possibly change.
// Algorithm 1 only writes to S, M and the wrapper's own LAV named graph —
// never to G — so a release can only affect queries whose pattern touches
// the concepts, features or concept edges its LAV subgraph (or its
// attribute-to-feature function F) mentions. Caches key their entries on
// query footprints and, when a new release arrives, retire only the entries
// whose footprint intersects the delta instead of recomputing everything
// (the delta-driven view-maintenance style of incremental engines).
type ReleaseDelta struct {
	// Wrapper and Source identify the registered wrapper.
	Wrapper rdf.IRI
	Source  rdf.IRI
	// Sequence is the global registration sequence number of the release.
	Sequence int
	// Concepts are the G concepts the release can affect: every concept
	// mentioned by the LAV subgraph plus the owners of every affected
	// feature. Sorted.
	Concepts []rdf.IRI
	// Features are the G features the release can affect: features mentioned
	// by the LAV subgraph, the range of F and — crucially for attribute
	// reuse — every feature a reused attribute was already owl:sameAs-linked
	// to (a new link can change which feature an attribute resolves to).
	// Sorted.
	Features []rdf.IRI
	// Attributes are the S attribute IRIs the wrapper projects (new and
	// reused). Sorted.
	Attributes []rdf.IRI
	// Edges are the (from, to) concept pairs of the object-property edges
	// the LAV subgraph provides. Their endpoints are always also listed in
	// Concepts; the pairs are kept for reporting and tooling. Sorted.
	Edges [][2]rdf.IRI
}

// Touches reports whether the delta affects the given concept or feature.
func (d *ReleaseDelta) Touches(iri rdf.IRI) bool {
	_, ok := slices.BinarySearch(d.Concepts, iri)
	if ok {
		return true
	}
	_, ok = slices.BinarySearch(d.Features, iri)
	return ok
}

// String renders the delta compactly for logs and the bdictl releases
// subcommand.
func (d *ReleaseDelta) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "release #%d %s: %d concept(s), %d feature(s), %d attribute(s), %d edge(s)",
		d.Sequence, d.Wrapper.LocalName(), len(d.Concepts), len(d.Features), len(d.Attributes), len(d.Edges))
	return b.String()
}

// Footprint is the set of ontology elements a memoized rewriting answer
// depends on: the concepts of the (expanded) query and the features it
// requests. A cached answer stays valid across a release whose delta does
// not intersect its footprint. Both slices are sorted; edge dependencies
// need no separate tracking because a delta providing an edge always lists
// both endpoint concepts.
type Footprint struct {
	Concepts []rdf.IRI
	Features []rdf.IRI
}

// NewFootprint builds a footprint from (possibly unsorted, possibly
// duplicated) concept and feature sets.
func NewFootprint(concepts, features []rdf.IRI) Footprint {
	return Footprint{Concepts: sortedUnique(concepts), Features: sortedUnique(features)}
}

// Intersects reports whether a release delta touches any element of the
// footprint. Both sides are sorted, so the test is one merge walk per kind.
func (f Footprint) Intersects(d *ReleaseDelta) bool {
	return sortedIntersect(f.Concepts, d.Concepts) || sortedIntersect(f.Features, d.Features)
}

// IntersectsAny reports whether any of the deltas touches the footprint.
func (f Footprint) IntersectsAny(deltas []*ReleaseDelta) bool {
	for _, d := range deltas {
		if f.Intersects(d) {
			return true
		}
	}
	return false
}

// TouchedConcepts returns the footprint concepts any of the deltas touches
// (directly, or through one of the footprint's features owned by the
// concept — attributed to the delta's own concept list). Used for
// per-concept invalidation statistics.
func (f Footprint) TouchedConcepts(deltas []*ReleaseDelta) []rdf.IRI {
	var out []rdf.IRI
	for _, c := range f.Concepts {
		for _, d := range deltas {
			if d.Touches(c) {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

func sortedUnique(in []rdf.IRI) []rdf.IRI {
	if len(in) == 0 {
		return nil
	}
	out := slices.Clone(in)
	slices.Sort(out)
	return slices.Compact(out)
}

func sortedIntersect(a, b []rdf.IRI) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// deltaSpan associates a release delta with the store-generation interval
// (from, to] its publication covered.
type deltaSpan struct {
	from, to uint64
	delta    *ReleaseDelta
}

// DeltaSpan is the exported form of a delta-log entry: the release delta
// together with the store-generation interval (From, To] its publication
// covered. The durability layer checkpoints the log and journals each new
// span so that, after a restart, caches validate incrementally against the
// same release history instead of falling back to full flushes.
type DeltaSpan struct {
	From  uint64
	To    uint64
	Delta *ReleaseDelta
}

// DeltaLog returns a copy of the ontology's bounded release-delta log in
// publication order.
func (o *Ontology) DeltaLog() []DeltaSpan {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]DeltaSpan, len(o.deltaLog))
	for i, s := range o.deltaLog {
		out[i] = DeltaSpan{From: s.from, To: s.to, Delta: s.delta}
	}
	return out
}

// RestoreDeltaLog replaces the delta log with the given spans (publication
// order), trimming to the bounded window. Recovery uses it to rebuild the
// log from a checkpoint plus the journaled release records.
func (o *Ontology) RestoreDeltaLog(spans []DeltaSpan) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.deltaLog = o.deltaLog[:0]
	for _, s := range spans {
		o.recordDeltaLocked(s.From, s.To, s.Delta)
	}
}

// AppendDeltaSpan appends one span to the delta log, trimming to the bounded
// window. The replication apply path uses it to mirror the primary's release
// history span by span (the span's store batch has already been applied), so
// a replica's rewriting caches invalidate incrementally exactly as the
// primary's do.
func (o *Ontology) AppendDeltaSpan(sp DeltaSpan) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.recordDeltaLocked(sp.From, sp.To, sp.Delta)
}

// SetReleaseHook installs (or, with nil, removes) a hook observing every
// delta span the ontology records, invoked under the ontology write lock
// immediately after the span enters the log. The durability layer uses it to
// journal release registrations; a non-nil error is propagated by NewRelease
// (note that the release's store batch has already been applied and logged at
// that point — losing only the span degrades cache invalidation to a full
// flush after recovery, never correctness).
func (o *Ontology) SetReleaseHook(h func(DeltaSpan) error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.releaseHook = h
}

// maxDeltaLog bounds the release-delta log. Caches that fall further behind
// than the window simply pay one full recompute; the log itself stays O(1).
const maxDeltaLog = 256

// recordDeltaLocked appends a release delta span. Caller holds o.mu.
func (o *Ontology) recordDeltaLocked(from, to uint64, d *ReleaseDelta) {
	if to == from {
		return
	}
	o.deltaLog = append(o.deltaLog, deltaSpan{from: from, to: to, delta: d})
	if len(o.deltaLog) > maxDeltaLog {
		o.deltaLog = o.deltaLog[len(o.deltaLog)-maxDeltaLog:]
	}
}

// DeltasBetween returns the release deltas that fully explain every store
// mutation in the generation interval (from, to]. ok is false when the
// interval contains any mutation that did not come from a release (e.g. a
// Global-graph edit or a direct store write), when the interval predates
// the bounded log window, or when generations moved backwards — in all of
// which cases the caller must fall back to full invalidation.
func (o *Ontology) DeltasBetween(from, to uint64) ([]*ReleaseDelta, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.deltasBetweenLocked(from, to)
}

// deltasBetweenLocked is DeltasBetween for callers already holding o.mu.
func (o *Ontology) deltasBetweenLocked(from, to uint64) ([]*ReleaseDelta, bool) {
	if to == from {
		return nil, true
	}
	if to < from {
		return nil, false
	}
	// Walk the log backwards collecting the contiguous chain to ... from.
	var rev []*ReleaseDelta
	next := to
	for i := len(o.deltaLog) - 1; i >= 0; i-- {
		span := o.deltaLog[i]
		if span.to < next {
			// A generation in (span.to, next] is unexplained by any release.
			return nil, false
		}
		if span.to > next {
			continue
		}
		rev = append(rev, span.delta)
		next = span.from
		if next <= from {
			break
		}
	}
	if next != from {
		return nil, false
	}
	out := make([]*ReleaseDelta, len(rev))
	for i, d := range rev {
		out[len(rev)-1-i] = d
	}
	return out, true
}

// computeReleaseDelta derives the delta of a validated release against the
// pre-release snapshot. G is never written by Algorithm 1, so concept and
// feature classification read from the same snapshot remain valid after the
// release is applied.
func computeReleaseDelta(sn store.Snapshot, r Release, sequence int) *ReleaseDelta {
	d := &ReleaseDelta{
		Wrapper:  WrapperURI(r.Wrapper.Name),
		Source:   SourceURI(r.Wrapper.Source),
		Sequence: sequence,
	}
	isConcept := func(t rdf.Term) (rdf.IRI, bool) {
		iri, ok := t.(rdf.IRI)
		if !ok {
			return "", false
		}
		return iri, sn.ContainsTriple(GlobalGraphName, rdf.T(iri, rdf.RDFType, GConcept))
	}
	var concepts, features []rdf.IRI

	// Elements mentioned by the LAV subgraph.
	for _, t := range r.Subgraph.Triples {
		s, sOK := isConcept(t.Subject)
		if sOK {
			concepts = append(concepts, s)
		}
		if p, ok := t.Predicate.(rdf.IRI); ok && p == GHasFeature {
			if f, ok := t.Object.(rdf.IRI); ok {
				features = append(features, f)
			}
			continue
		}
		if obj, oOK := isConcept(t.Object); oOK {
			concepts = append(concepts, obj)
			if sOK {
				d.Edges = append(d.Edges, [2]rdf.IRI{s, obj})
			}
		}
	}

	// The range of F, and — for reused attributes — every feature the
	// attribute is already linked to: a second owl:sameAs link can change
	// which feature an existing attribute resolves to under the accessors'
	// first-match semantics.
	for _, a := range r.Wrapper.Attributes() {
		attrURI := AttributeURI(r.Wrapper.Source, a)
		d.Attributes = append(d.Attributes, attrURI)
		if f, ok := r.F[a]; ok {
			features = append(features, f)
		}
		for _, q := range sn.Match(store.InGraph(MappingsGraphName, attrURI, rdf.OWLSameAs, nil)) {
			if f, ok := q.Object.(rdf.IRI); ok {
				features = append(features, f)
			}
		}
	}

	// Every affected feature also marks its owning concept: feature-level
	// changes surface in rewrites through the concept's intra-concept unit.
	features = sortedUnique(features)
	for _, f := range features {
		for _, q := range sn.Match(store.InGraph(GlobalGraphName, nil, GHasFeature, f)) {
			if c, ok := q.Subject.(rdf.IRI); ok {
				concepts = append(concepts, c)
			}
		}
	}

	d.Concepts = sortedUnique(concepts)
	d.Features = features
	d.Attributes = sortedUnique(d.Attributes)
	slices.SortFunc(d.Edges, func(a, b [2]rdf.IRI) int {
		if a[0] != b[0] {
			return strings.Compare(string(a[0]), string(b[0]))
		}
		return strings.Compare(string(a[1]), string(b[1]))
	})
	d.Edges = slices.Compact(d.Edges)
	return d
}
