package core

import (
	"fmt"
	"sync"

	"bdi/internal/rdf"
	"bdi/internal/reasoner"
	"bdi/internal/sparql"
	"bdi/internal/store"
)

// Ontology is the BDI ontology T = ⟨G, S, M⟩: three RDF named graphs stored
// in a single quad store, managed by the data steward, and queried by the
// rewriting algorithms. All mutation goes through methods of this type so
// that the design constraints of §3 (e.g. a feature belongs to exactly one
// concept) can be enforced.
type Ontology struct {
	mu sync.RWMutex

	store    *store.Store
	engine   *reasoner.Engine
	eval     *sparql.Evaluator
	prefixes *rdf.PrefixMap

	// qc memoizes rewriting-time lookups for one store generation (see
	// querycache.go). When the store mutates, the instance is advanced
	// incrementally if the mutation interval is explained by release deltas,
	// and replaced wholesale otherwise.
	qc *queryCache

	// deltaLog records, per release, the store-generation interval it
	// published and its invalidation footprint (see delta.go). Bounded to
	// maxDeltaLog spans.
	deltaLog []deltaSpan

	// releaseHook, when set, observes every recorded delta span (see
	// SetReleaseHook). Guarded by mu.
	releaseHook func(DeltaSpan) error
}

// NewOntology returns an ontology whose store is initialized with the
// metadata models for G (Code 6) and S (Code 7).
func NewOntology() *Ontology {
	s := store.New()
	o := &Ontology{
		store:    s,
		engine:   reasoner.New(s),
		eval:     sparql.NewEvaluator(s),
		prefixes: DefaultPrefixes(),
	}
	o.installMetamodel()
	return o
}

// RestoreOntology wraps a store rebuilt by the durability layer (checkpoint
// load + WAL replay) into an Ontology. Unlike NewOntology it does not
// install the metamodel — the restored store already contains it — and it
// seeds the release-delta log with the recovered spans, so rewriting caches
// validate incrementally across the restart exactly as they would have
// without it.
func RestoreOntology(s *store.Store, spans []DeltaSpan) *Ontology {
	o := &Ontology{
		store:    s,
		engine:   reasoner.New(s),
		eval:     sparql.NewEvaluator(s),
		prefixes: DefaultPrefixes(),
	}
	o.RestoreDeltaLog(spans)
	return o
}

// Store exposes the underlying quad store (read-mostly; mutate through the
// Ontology methods).
func (o *Ontology) Store() *store.Store { return o.store }

// Reasoner returns the RDFS inference engine over the ontology.
func (o *Ontology) Reasoner() *reasoner.Engine { return o.engine }

// Evaluator returns a SPARQL evaluator bound to the ontology store.
func (o *Ontology) Evaluator() *sparql.Evaluator { return o.eval }

// Prefixes returns the prefix map used for display and serialization.
func (o *Ontology) Prefixes() *rdf.PrefixMap { return o.prefixes }

// BindPrefix adds a namespace binding (e.g. the case-study vocabulary).
func (o *Ontology) BindPrefix(prefix, ns string) { o.prefixes.Bind(prefix, ns) }

// installMetamodel asserts the vocabulary declarations of Codes 6 and 7 into
// the G and S named graphs.
func (o *Ontology) installMetamodel() {
	addG := func(t rdf.Triple) { o.store.MustAdd(rdf.Quad{Triple: t, Graph: GlobalGraphName}) }
	addS := func(t rdf.Triple) { o.store.MustAdd(rdf.Quad{Triple: t, Graph: SourceGraphName}) }

	globalVocab := rdf.IRI(NSGlobal)
	addG(rdf.T(globalVocab, rdf.RDFType, rdf.VOAFVocabulary))
	addG(rdf.Triple{Subject: globalVocab, Predicate: rdf.VANNPreferredNamespacePrefix, Object: rdf.NewLiteral("G")})
	addG(rdf.Triple{Subject: globalVocab, Predicate: rdf.VANNPreferredNamespaceURI, Object: rdf.NewLiteral(NSGlobal)})
	addG(rdf.Triple{Subject: globalVocab, Predicate: rdf.RDFSLabel, Object: rdf.NewLiteral("The Global graph vocabulary")})
	addG(rdf.T(GConcept, rdf.RDFType, rdf.RDFSClass))
	addG(rdf.T(GConcept, rdf.RDFSIsDefinedBy, globalVocab))
	addG(rdf.T(GFeature, rdf.RDFType, rdf.RDFSClass))
	addG(rdf.T(GFeature, rdf.RDFSIsDefinedBy, globalVocab))
	addG(rdf.T(GHasFeature, rdf.RDFType, rdf.RDFProperty))
	addG(rdf.T(GHasFeature, rdf.RDFSIsDefinedBy, globalVocab))
	addG(rdf.T(GHasFeature, rdf.RDFSDomain, GConcept))
	addG(rdf.T(GHasFeature, rdf.RDFSRange, GFeature))
	addG(rdf.T(GHasDatatype, rdf.RDFType, rdf.RDFProperty))
	addG(rdf.T(GHasDatatype, rdf.RDFSIsDefinedBy, globalVocab))
	addG(rdf.T(GHasDatatype, rdf.RDFSDomain, GFeature))
	addG(rdf.T(GHasDatatype, rdf.RDFSRange, rdf.RDFSDatatype))
	// sc:identifier is the root of the identifier-feature taxonomy.
	addG(rdf.T(rdf.SchemaIdentifier, rdf.RDFType, rdf.RDFSClass))

	sourceVocab := rdf.IRI(NSSource)
	addS(rdf.T(sourceVocab, rdf.RDFType, rdf.VOAFVocabulary))
	addS(rdf.Triple{Subject: sourceVocab, Predicate: rdf.VANNPreferredNamespacePrefix, Object: rdf.NewLiteral("S")})
	addS(rdf.Triple{Subject: sourceVocab, Predicate: rdf.VANNPreferredNamespaceURI, Object: rdf.NewLiteral(NSSource)})
	addS(rdf.Triple{Subject: sourceVocab, Predicate: rdf.RDFSLabel, Object: rdf.NewLiteral("The Source graph vocabulary")})
	addS(rdf.T(SDataSource, rdf.RDFType, rdf.RDFSClass))
	addS(rdf.T(SDataSource, rdf.RDFSIsDefinedBy, sourceVocab))
	addS(rdf.T(SWrapper, rdf.RDFType, rdf.RDFSClass))
	addS(rdf.T(SWrapper, rdf.RDFSIsDefinedBy, sourceVocab))
	addS(rdf.T(SAttribute, rdf.RDFType, rdf.RDFSClass))
	addS(rdf.T(SAttribute, rdf.RDFSIsDefinedBy, sourceVocab))
	addS(rdf.T(SHasWrapper, rdf.RDFType, rdf.RDFProperty))
	addS(rdf.T(SHasWrapper, rdf.RDFSIsDefinedBy, sourceVocab))
	addS(rdf.T(SHasWrapper, rdf.RDFSDomain, SDataSource))
	addS(rdf.T(SHasWrapper, rdf.RDFSRange, SWrapper))
	addS(rdf.T(SHasAttribute, rdf.RDFType, rdf.RDFProperty))
	addS(rdf.T(SHasAttribute, rdf.RDFSIsDefinedBy, sourceVocab))
	addS(rdf.T(SHasAttribute, rdf.RDFSDomain, SWrapper))
	addS(rdf.T(SHasAttribute, rdf.RDFSRange, SAttribute))
}

// MetamodelSize returns the number of triples installed by the metamodel;
// growth analyses (§6.4) subtract it to count only application triples.
func MetamodelSize() int {
	o := NewOntology()
	return o.store.Len()
}

// addToGraph asserts a triple in the given named graph.
func (o *Ontology) addToGraph(graph rdf.IRI, t rdf.Triple) error {
	_, err := o.store.AddTriple(graph, t)
	if err != nil {
		return fmt.Errorf("core: adding %v to %s: %w", t, graph, err)
	}
	return nil
}

// GlobalGraph returns a materialized copy of G.
func (o *Ontology) GlobalGraph() *rdf.Graph { return o.store.NamedGraph(GlobalGraphName) }

// SourceGraph returns a materialized copy of S.
func (o *Ontology) SourceGraph() *rdf.Graph { return o.store.NamedGraph(SourceGraphName) }

// MappingsGraph returns a materialized copy of the owl:sameAs /
// M:mapping side of M.
func (o *Ontology) MappingsGraph() *rdf.Graph { return o.store.NamedGraph(MappingsGraphName) }

// TriplesInSource returns the number of triples currently in S. It is the
// growth metric of §6.4 (Figure 11).
func (o *Ontology) TriplesInSource() int { return o.store.GraphLen(SourceGraphName) }

// TriplesInGlobal returns the number of triples currently in G.
func (o *Ontology) TriplesInGlobal() int { return o.store.GraphLen(GlobalGraphName) }

// Stats summarizes the ontology contents.
type Stats struct {
	GlobalTriples   int
	SourceTriples   int
	MappingTriples  int
	LAVGraphTriples int
	Concepts        int
	Features        int
	DataSources     int
	Wrappers        int
	Attributes      int
}

// Stats computes ontology statistics.
func (o *Ontology) Stats() Stats {
	st := Stats{
		GlobalTriples:  o.store.GraphLen(GlobalGraphName),
		SourceTriples:  o.store.GraphLen(SourceGraphName),
		MappingTriples: o.store.GraphLen(MappingsGraphName),
		Concepts:       len(o.Concepts()),
		Features:       len(o.Features()),
		DataSources:    len(o.DataSources()),
		Wrappers:       len(o.Wrappers()),
		Attributes:     len(o.Attributes()),
	}
	for _, g := range o.store.Graphs() {
		if isLAVGraph(g) {
			st.LAVGraphTriples += o.store.GraphLen(g)
		}
	}
	return st
}

func isLAVGraph(g rdf.IRI) bool {
	prefix := NSMapping + "graph/"
	s := string(g)
	return len(s) > len(prefix) && s[:len(prefix)] == prefix
}

// String returns a short description of the ontology.
func (o *Ontology) String() string {
	st := o.Stats()
	return fmt.Sprintf("BDI ontology{G=%d S=%d M=%d concepts=%d features=%d wrappers=%d}",
		st.GlobalTriples, st.SourceTriples, st.MappingTriples, st.Concepts, st.Features, st.Wrappers)
}
