package core

import (
	"strings"
	"testing"

	"bdi/internal/rdf"
)

func TestNewOntologyInstallsMetamodel(t *testing.T) {
	o := NewOntology()
	if o.TriplesInGlobal() == 0 || o.store.GraphLen(SourceGraphName) == 0 {
		t.Fatal("metamodel should populate G and S")
	}
	// Code 6 declarations.
	if !o.store.ContainsTriple(GlobalGraphName, rdf.T(GConcept, rdf.RDFType, rdf.RDFSClass)) {
		t.Error("G:Concept must be declared an rdfs:Class")
	}
	if !o.store.ContainsTriple(GlobalGraphName, rdf.T(GHasFeature, rdf.RDFSDomain, GConcept)) {
		t.Error("G:hasFeature domain missing")
	}
	// Code 7 declarations.
	if !o.store.ContainsTriple(SourceGraphName, rdf.T(SHasAttribute, rdf.RDFSRange, SAttribute)) {
		t.Error("S:hasAttribute range missing")
	}
	if MetamodelSize() != o.Store().Len() {
		t.Error("MetamodelSize should equal a fresh ontology's size")
	}
}

func TestURIHelpers(t *testing.T) {
	if SourceURI("D1") != rdf.IRI(NSSource+"DataSource/D1") {
		t.Errorf("SourceURI = %v", SourceURI("D1"))
	}
	if WrapperURI("w1") != rdf.IRI(NSSource+"Wrapper/w1") {
		t.Errorf("WrapperURI = %v", WrapperURI("w1"))
	}
	attr := AttributeURI("D1", "VoDmonitorId")
	if attr != rdf.IRI(NSSource+"DataSource/D1/VoDmonitorId") {
		t.Errorf("AttributeURI = %v", attr)
	}
	if AttributeName(attr) != "D1/VoDmonitorId" {
		t.Errorf("AttributeName = %q", AttributeName(attr))
	}
	if !strings.Contains(string(MappingGraphURI("w1")), "graph/w1") {
		t.Errorf("MappingGraphURI = %v", MappingGraphURI("w1"))
	}
}

func TestAddConceptFeatureAndRelations(t *testing.T) {
	o := NewOntology()
	c := rdf.IRI("http://ex/App")
	f := rdf.IRI("http://ex/appId")
	if err := o.AddConcept(c); err != nil {
		t.Fatal(err)
	}
	if !o.IsConcept(c) {
		t.Error("concept not recognized")
	}
	if err := o.AddIdentifier(c, f, rdf.XSDInteger); err != nil {
		t.Fatal(err)
	}
	if !o.IsFeature(f) || !o.IsIdentifier(f) {
		t.Error("identifier feature not recognized")
	}
	if dt, ok := o.DatatypeOf(f); !ok || dt != rdf.XSDInteger {
		t.Errorf("datatype = %v, %v", dt, ok)
	}
	if got := o.FeaturesOf(c); len(got) != 1 || got[0] != f {
		t.Errorf("FeaturesOf = %v", got)
	}
	if owner, ok := o.ConceptOfFeature(f); !ok || owner != c {
		t.Errorf("ConceptOfFeature = %v, %v", owner, ok)
	}
	if ids := o.IdentifiersOf(c); len(ids) != 1 || ids[0] != f {
		t.Errorf("IdentifiersOf = %v", ids)
	}
}

func TestHasFeatureRejectsSharedFeatures(t *testing.T) {
	o := NewOntology()
	c1, c2 := rdf.IRI("http://ex/A"), rdf.IRI("http://ex/B")
	f := rdf.IRI("http://ex/f")
	if err := o.AddConcept(c1); err != nil {
		t.Fatal(err)
	}
	if err := o.AddConcept(c2); err != nil {
		t.Fatal(err)
	}
	if err := o.AddFeatureTo(c1, f, rdf.XSDString); err != nil {
		t.Fatal(err)
	}
	if err := o.HasFeature(c2, f); err == nil {
		t.Error("a feature must belong to only one concept (§3.1)")
	}
	// Re-linking to the same concept is idempotent.
	if err := o.HasFeature(c1, f); err != nil {
		t.Errorf("re-linking to the same concept should succeed: %v", err)
	}
}

func TestHasFeatureRequiresDeclaredTypes(t *testing.T) {
	o := NewOntology()
	if err := o.HasFeature(rdf.IRI("http://ex/C"), rdf.IRI("http://ex/f")); err == nil {
		t.Error("undeclared concept should be rejected")
	}
	if err := o.AddConcept(rdf.IRI("http://ex/C")); err != nil {
		t.Fatal(err)
	}
	if err := o.HasFeature(rdf.IRI("http://ex/C"), rdf.IRI("http://ex/f")); err == nil {
		t.Error("undeclared feature should be rejected")
	}
}

func TestRelateRequiresConcepts(t *testing.T) {
	o := NewOntology()
	a, b := rdf.IRI("http://ex/A"), rdf.IRI("http://ex/B")
	if err := o.Relate(a, rdf.IRI("http://ex/p"), b); err == nil {
		t.Error("relating undeclared concepts should fail")
	}
	if err := o.AddConcept(a); err != nil {
		t.Fatal(err)
	}
	if err := o.AddConcept(b); err != nil {
		t.Fatal(err)
	}
	if err := o.Relate(a, rdf.IRI("http://ex/p"), b); err != nil {
		t.Fatal(err)
	}
	edges := o.ConceptEdges()
	if len(edges) != 1 {
		t.Errorf("ConceptEdges = %v", edges)
	}
}

func TestSupersedeGlobalGraph(t *testing.T) {
	o := NewOntology()
	if err := BuildSupersedeGlobalGraph(o); err != nil {
		t.Fatal(err)
	}
	if len(o.Concepts()) != 5 {
		t.Errorf("concepts = %v", o.Concepts())
	}
	if len(o.Features()) != 5 {
		t.Errorf("features = %v", o.Features())
	}
	if !o.IsIdentifier(SupMonitorID) {
		t.Error("sup:monitorId must be an identifier")
	}
	if o.IsIdentifier(SupLagRatio) {
		t.Error("sup:lagRatio must not be an identifier")
	}
	if len(o.ConceptEdges()) != 4 {
		t.Errorf("concept edges = %v", o.ConceptEdges())
	}
}

func TestNewReleaseAlgorithm1(t *testing.T) {
	o := NewOntology()
	if err := BuildSupersedeGlobalGraph(o); err != nil {
		t.Fatal(err)
	}
	res, err := o.NewRelease(SupersedeReleaseW1())
	if err != nil {
		t.Fatal(err)
	}
	if !res.NewSource {
		t.Error("D1 should be a new source")
	}
	if len(res.NewAttributes) != 2 || len(res.ReusedAttributes) != 0 {
		t.Errorf("attributes: new=%v reused=%v", res.NewAttributes, res.ReusedAttributes)
	}
	// Source graph content (Algorithm 1 lines 3-15).
	if !o.Store().ContainsTriple(SourceGraphName, rdf.T(SourceURI("D1"), rdf.RDFType, SDataSource)) {
		t.Error("data source D1 not registered")
	}
	if !o.Store().ContainsTriple(SourceGraphName, rdf.T(SourceURI("D1"), SHasWrapper, WrapperURI("w1"))) {
		t.Error("w1 not linked to D1")
	}
	if !o.Store().ContainsTriple(SourceGraphName, rdf.T(WrapperURI("w1"), SHasAttribute, AttributeURI("D1", "lagRatio"))) {
		t.Error("lagRatio attribute not linked to w1")
	}
	// Mapping graph content (lines 16-21).
	if g, ok := o.LAVGraphOf(WrapperURI("w1")); !ok || o.Store().GraphLen(g) != 3 {
		t.Errorf("LAV graph missing or wrong size: %v %d", g, o.Store().GraphLen(g))
	}
	if f, ok := o.FeatureOfAttribute(AttributeURI("D1", "VoDmonitorId")); !ok || f != SupMonitorID {
		t.Errorf("F(VoDmonitorId) = %v, %v", f, ok)
	}
}

func TestNewReleaseReusesAttributesOfSameSource(t *testing.T) {
	o, err := BuildSupersedeOntology(false)
	if err != nil {
		t.Fatal(err)
	}
	before := o.TriplesInSource()
	res, err := o.NewRelease(SupersedeReleaseW4())
	if err != nil {
		t.Fatal(err)
	}
	if res.NewSource {
		t.Error("D1 already exists, release must not re-register it")
	}
	// VoDmonitorId is reused, bufferingRatio is new.
	if len(res.ReusedAttributes) != 1 || len(res.NewAttributes) != 1 {
		t.Errorf("reused=%v new=%v", res.ReusedAttributes, res.NewAttributes)
	}
	if res.SourceTriplesAdded != o.TriplesInSource()-before {
		t.Error("SourceTriplesAdded inconsistent")
	}
	// w4: wrapper type + hasWrapper + 2 hasAttribute + 1 new attribute type = 5.
	if res.SourceTriplesAdded != 5 {
		t.Errorf("SourceTriplesAdded = %d, want 5", res.SourceTriplesAdded)
	}
}

func TestNewReleaseValidation(t *testing.T) {
	o := NewOntology()
	if err := BuildSupersedeGlobalGraph(o); err != nil {
		t.Fatal(err)
	}
	// Empty subgraph.
	bad := SupersedeReleaseW1()
	bad.Subgraph = rdf.NewGraph("")
	if _, err := o.NewRelease(bad); err == nil {
		t.Error("empty subgraph should be rejected")
	}
	// Subgraph not contained in G.
	bad2 := SupersedeReleaseW1()
	bad2.Subgraph = rdf.NewGraph("")
	bad2.Subgraph.Add(rdf.T("http://ex/X", "http://ex/y", "http://ex/Z"))
	if _, err := o.NewRelease(bad2); err == nil {
		t.Error("subgraph outside G should be rejected")
	}
	// F maps an unknown attribute.
	bad3 := SupersedeReleaseW1()
	bad3.F["unknownAttr"] = SupLagRatio
	if _, err := o.NewRelease(bad3); err == nil {
		t.Error("F over unknown attribute should be rejected")
	}
	// Duplicate wrapper registration.
	if _, err := o.NewRelease(SupersedeReleaseW1()); err != nil {
		t.Fatal(err)
	}
	if _, err := o.NewRelease(SupersedeReleaseW1()); err == nil {
		t.Error("duplicate wrapper registration should be rejected")
	}
	// Wrapper spec problems.
	specs := []WrapperSpec{
		{},
		{Name: "w"},
		{Name: "w", Source: "D", IDAttributes: []string{"a", "a"}},
		{Name: "w", Source: "D", IDAttributes: []string{""}},
	}
	for i, s := range specs {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
}

func TestSupersedeOntologyAccessors(t *testing.T) {
	o, err := BuildSupersedeOntology(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.DataSources()) != 3 {
		t.Errorf("data sources = %v", o.DataSources())
	}
	if len(o.Wrappers()) != 4 {
		t.Errorf("wrappers = %v", o.Wrappers())
	}
	if got := o.WrappersOfSource("D1"); len(got) != 2 {
		t.Errorf("wrappers of D1 = %v", got)
	}
	if s, ok := o.SourceOfWrapper(WrapperURI("w2")); !ok || s != SourceURI("D2") {
		t.Errorf("source of w2 = %v", s)
	}
	if attrs := o.AttributesOfWrapper(WrapperURI("w3")); len(attrs) != 3 {
		t.Errorf("attributes of w3 = %v", attrs)
	}
	// LAV mapping resolution used by the rewriting algorithms.
	providers := o.WrappersProvidingFeature(SupMonitor, SupMonitorID)
	if len(providers) != 3 {
		t.Errorf("providers of (Monitor, monitorId) = %v", providers)
	}
	providers = o.WrappersProvidingFeature(SupInfoMonitor, SupLagRatio)
	if len(providers) != 2 {
		t.Errorf("providers of (InfoMonitor, lagRatio) = %v", providers)
	}
	edgeProviders := o.WrappersProvidingEdge(SupSoftwareApplication, SupMonitor)
	if len(edgeProviders) != 1 || edgeProviders[0] != WrapperURI("w3") {
		t.Errorf("edge providers = %v", edgeProviders)
	}
	if attr, ok := o.AttributeOfFeatureInWrapper(WrapperURI("w4"), SupLagRatio); !ok || AttributeName(attr) != "D1/bufferingRatio" {
		t.Errorf("attribute of lagRatio in w4 = %v, %v", attr, ok)
	}
	if attrs := o.AttributesOfFeature(SupMonitorID); len(attrs) != 2 {
		t.Errorf("attributes of monitorId = %v", attrs)
	}
	if w, ok := o.WrapperOfLAVGraph(MappingGraphURI("w2")); !ok || w != WrapperURI("w2") {
		t.Errorf("wrapper of LAV graph = %v", w)
	}
}

func TestStatsAndString(t *testing.T) {
	o, err := BuildSupersedeOntology(false)
	if err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Concepts != 5 || st.Features != 5 || st.Wrappers != 3 || st.DataSources != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.LAVGraphTriples == 0 {
		t.Error("LAV graphs should contain triples")
	}
	if !strings.Contains(o.String(), "BDI ontology") {
		t.Error("String() malformed")
	}
}

func TestRemoveWrapperRegistration(t *testing.T) {
	o, err := BuildSupersedeOntology(true)
	if err != nil {
		t.Fatal(err)
	}
	removed := o.RemoveWrapperRegistration("w4")
	if removed == 0 {
		t.Fatal("expected triples to be removed")
	}
	if len(o.Wrappers()) != 3 {
		t.Errorf("wrappers after removal = %v", o.Wrappers())
	}
	if _, ok := o.LAVGraphOf(WrapperURI("w4")); ok {
		t.Error("LAV graph of w4 should be gone")
	}
}

func TestDefaultPrefixes(t *testing.T) {
	pm := DefaultPrefixes()
	if got := pm.Compact(GHasFeature); got != "G:hasFeature" {
		t.Errorf("compact = %q", got)
	}
	if got := pm.Compact(SupMonitorID); got != "sup:monitorId" {
		t.Errorf("compact = %q", got)
	}
}
