package core

import (
	"slices"
	"sync"

	"bdi/internal/rdf"
	"bdi/internal/store"
)

// queryCache memoizes the ontology lookups that dominate query rewriting —
// the wrapper↔mapping-graph correspondence, per-triple covering-wrapper
// sets, edge-providing wrappers and per-(wrapper, feature) attribute
// resolution — keyed on dictionary TermIDs. A cache instance is valid for
// exactly one store generation; any mutation of the ontology store retires
// the whole instance (writes into a retired instance are harmless: it is
// unreachable from the ontology). The instance carries the store.Snapshot
// it was created against, and every probe that fills it reads from that
// snapshot, so all memoized answers of one instance describe one consistent
// store state.
type queryCache struct {
	snap store.Snapshot

	mu sync.Mutex
	// wrapperGraph is LAVGraphOf as a map: wrapper -> its first mapping
	// graph; graphWrapper is WrapperOfLAVGraph: graph -> the first wrapper
	// claiming it; coveringByGraph inverts wrapperGraph (all wrappers whose
	// mapping lives in the graph). nil until the first lookup builds them.
	wrapperGraph    map[rdf.IRI]rdf.IRI
	graphWrapper    map[rdf.IRI]rdf.IRI
	coveringByGraph map[rdf.IRI][]rdf.IRI

	covering      map[[3]rdf.TermID][]rdf.IRI // ground triple -> covering wrappers
	edges         map[[2]rdf.TermID][]rdf.IRI // (from, to) -> edge-providing wrappers
	attrOf        map[[2]rdf.TermID]rdf.IRI   // (wrapper, feature) -> attribute, "" = none
	identifiersOf map[rdf.TermID][]rdf.IRI    // concept -> identifier features
	providers     map[[2]rdf.TermID][]rdf.IRI // (concept, feature) -> providing wrappers
	featureOfAttr map[rdf.TermID]rdf.IRI      // attribute -> feature, "" = none
	attrsOf       map[rdf.TermID][]rdf.IRI    // feature -> attributes
	sourceOf      map[rdf.TermID]rdf.IRI      // wrapper -> data source, "" = none
}

// queryCache returns the cache for the current store generation, retiring
// any stale instance. The new instance pins the snapshot it was created
// against.
func (o *Ontology) queryCache() *queryCache {
	sn := o.store.Snapshot()
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.qc == nil || o.qc.snap != sn {
		o.qc = &queryCache{
			snap:          sn,
			covering:      map[[3]rdf.TermID][]rdf.IRI{},
			edges:         map[[2]rdf.TermID][]rdf.IRI{},
			attrOf:        map[[2]rdf.TermID]rdf.IRI{},
			identifiersOf: map[rdf.TermID][]rdf.IRI{},
			providers:     map[[2]rdf.TermID][]rdf.IRI{},
			featureOfAttr: map[rdf.TermID]rdf.IRI{},
			attrsOf:       map[rdf.TermID][]rdf.IRI{},
			sourceOf:      map[rdf.TermID]rdf.IRI{},
		}
	}
	return o.qc
}

// ensureMappingMapsLocked builds the wrapper↔graph maps from one sorted scan
// of the M:mapping triples, read from the cache's pinned snapshot. The scan
// is subject-major in ascending term-key order, so "first object per
// subject" and "first subject per object" reproduce LAVGraphOf's and
// WrapperOfLAVGraph's first-match semantics.
func (qc *queryCache) ensureMappingMapsLocked(o *Ontology) {
	if qc.wrapperGraph != nil {
		return
	}
	qc.wrapperGraph = map[rdf.IRI]rdf.IRI{}
	qc.graphWrapper = map[rdf.IRI]rdf.IRI{}
	qc.coveringByGraph = map[rdf.IRI][]rdf.IRI{}
	for _, q := range qc.snap.Match(store.InGraph(MappingsGraphName, nil, MMapping, nil)) {
		w, okW := q.Subject.(rdf.IRI)
		g, okG := q.Object.(rdf.IRI)
		if !okW || !okG {
			continue
		}
		if _, seen := qc.wrapperGraph[w]; !seen {
			qc.wrapperGraph[w] = g
			qc.coveringByGraph[g] = append(qc.coveringByGraph[g], w)
		}
		if _, seen := qc.graphWrapper[g]; !seen {
			qc.graphWrapper[g] = w
		}
	}
}

// WrappersCoveringTriple returns the wrappers whose LAV mapping graph
// contains the given ground triple, sorted. The result is memoized per store
// generation and must not be mutated; triples with variables or terms the
// store has never seen are covered by no wrapper.
func (o *Ontology) WrappersCoveringTriple(t rdf.Triple) []rdf.IRI {
	qc := o.queryCache()
	d := qc.snap.Dict()
	sid, okS := d.Lookup(t.Subject)
	pid, okP := d.Lookup(t.Predicate)
	oid, okO := d.Lookup(t.Object)
	if !okS || !okP || !okO {
		return nil
	}
	key := [3]rdf.TermID{sid, pid, oid}
	qc.mu.Lock()
	if ws, ok := qc.covering[key]; ok {
		qc.mu.Unlock()
		return ws
	}
	qc.ensureMappingMapsLocked(o)
	qc.mu.Unlock()

	var out []rdf.IRI
	for _, g := range qc.snap.GraphsContaining(t) {
		qc.mu.Lock()
		ws := qc.coveringByGraph[g]
		qc.mu.Unlock()
		out = append(out, ws...)
	}
	slices.Sort(out)
	qc.mu.Lock()
	qc.covering[key] = out
	qc.mu.Unlock()
	return out
}
