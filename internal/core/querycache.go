package core

import (
	"slices"
	"sync"

	"bdi/internal/rdf"
	"bdi/internal/store"
)

// queryCache memoizes the ontology lookups that dominate query rewriting —
// the wrapper↔mapping-graph correspondence, per-triple covering-wrapper
// sets, edge-providing wrappers and per-(wrapper, feature) attribute
// resolution — keyed on dictionary TermIDs. A cache instance is valid for
// exactly one store generation; when the store mutates, a new instance is
// created (writes into a retired instance are harmless: it is unreachable
// from the ontology). If every mutation between the old and new generation
// is explained by release deltas, the new instance starts pre-seeded with
// the old instance's entries whose key terms the deltas do not touch —
// registering a wrapper for one concept no longer forgets every other
// concept's memoized answers. The instance carries the store.Snapshot it
// was created against, and every probe that fills it reads from that
// snapshot, so all memoized answers of one instance describe one consistent
// store state.
type queryCache struct {
	snap store.Snapshot

	mu sync.Mutex
	// wrapperGraph is LAVGraphOf as a map: wrapper -> its first mapping
	// graph; graphWrapper is WrapperOfLAVGraph: graph -> the first wrapper
	// claiming it; coveringByGraph inverts wrapperGraph (all wrappers whose
	// mapping lives in the graph). nil until the first lookup builds them.
	wrapperGraph    map[rdf.IRI]rdf.IRI
	graphWrapper    map[rdf.IRI]rdf.IRI
	coveringByGraph map[rdf.IRI][]rdf.IRI

	covering      map[[3]rdf.TermID][]rdf.IRI // ground triple -> covering wrappers
	edges         map[[2]rdf.TermID][]rdf.IRI // (from, to) -> edge-providing wrappers
	attrOf        map[[2]rdf.TermID]rdf.IRI   // (wrapper, feature) -> attribute, "" = none
	identifiersOf map[rdf.TermID][]rdf.IRI    // concept -> identifier features
	providers     map[[2]rdf.TermID][]rdf.IRI // (concept, feature) -> providing wrappers
	featureOfAttr map[rdf.TermID]rdf.IRI      // attribute -> feature, "" = none
	attrsOf       map[rdf.TermID][]rdf.IRI    // feature -> attributes
	sourceOf      map[rdf.TermID]rdf.IRI      // wrapper -> data source, "" = none
}

// queryCache returns the cache for the current store generation, retiring
// any stale instance. The new instance pins the snapshot it was created
// against; when the stale instance is separated from the current snapshot
// only by releases, the surviving entries are carried over.
func (o *Ontology) queryCache() *queryCache {
	sn := o.store.Snapshot()
	o.mu.Lock()
	defer o.mu.Unlock()
	switch {
	case o.qc != nil && o.qc.snap == sn:
		// Current.
	case o.qc != nil:
		if deltas, ok := o.deltasBetweenLocked(o.qc.snap.Generation(), sn.Generation()); ok {
			o.qc = o.qc.advance(sn, deltas)
		} else {
			o.qc = newQueryCache(sn)
		}
	default:
		o.qc = newQueryCache(sn)
	}
	return o.qc
}

func newQueryCache(sn store.Snapshot) *queryCache {
	return &queryCache{
		snap:          sn,
		covering:      map[[3]rdf.TermID][]rdf.IRI{},
		edges:         map[[2]rdf.TermID][]rdf.IRI{},
		attrOf:        map[[2]rdf.TermID]rdf.IRI{},
		identifiersOf: map[rdf.TermID][]rdf.IRI{},
		providers:     map[[2]rdf.TermID][]rdf.IRI{},
		featureOfAttr: map[rdf.TermID]rdf.IRI{},
		attrsOf:       map[rdf.TermID][]rdf.IRI{},
		sourceOf:      map[rdf.TermID]rdf.IRI{},
	}
}

// advance builds the cache instance for a newer snapshot separated from
// this one only by the given release deltas, carrying over every memoized
// entry whose key terms no delta touches. The wrapper↔graph mapping maps
// are always rebuilt (every release adds a mapping link). Entries are
// copied, not shared: late writers still holding the retired instance must
// not reach the new one. The dictionary is append-only and shared by both
// snapshots, so TermID keys remain comparable across the advance.
func (qc *queryCache) advance(sn store.Snapshot, deltas []*ReleaseDelta) *queryCache {
	touched := map[rdf.TermID]struct{}{}
	d := sn.Dict()
	mark := func(iri rdf.IRI) {
		if id, ok := d.LookupIRI(iri); ok {
			touched[id] = struct{}{}
		}
	}
	for _, rd := range deltas {
		mark(rd.Wrapper)
		for _, c := range rd.Concepts {
			mark(c)
		}
		for _, f := range rd.Features {
			mark(f)
		}
		for _, a := range rd.Attributes {
			mark(a)
		}
	}
	hit := func(id rdf.TermID) bool { _, ok := touched[id]; return ok }

	next := newQueryCache(sn)
	qc.mu.Lock()
	defer qc.mu.Unlock()
	for k, v := range qc.covering {
		if !hit(k[0]) && !hit(k[1]) && !hit(k[2]) {
			next.covering[k] = v
		}
	}
	for k, v := range qc.edges {
		if !hit(k[0]) && !hit(k[1]) {
			next.edges[k] = v
		}
	}
	for k, v := range qc.attrOf {
		if !hit(k[0]) && !hit(k[1]) {
			next.attrOf[k] = v
		}
	}
	for k, v := range qc.providers {
		if !hit(k[0]) && !hit(k[1]) {
			next.providers[k] = v
		}
	}
	for k, v := range qc.identifiersOf {
		if !hit(k) {
			next.identifiersOf[k] = v
		}
	}
	for k, v := range qc.featureOfAttr {
		if !hit(k) {
			next.featureOfAttr[k] = v
		}
	}
	for k, v := range qc.attrsOf {
		if !hit(k) {
			next.attrsOf[k] = v
		}
	}
	for k, v := range qc.sourceOf {
		if !hit(k) {
			next.sourceOf[k] = v
		}
	}
	return next
}

// ensureMappingMapsLocked builds the wrapper↔graph maps from one sorted scan
// of the M:mapping triples, read from the cache's pinned snapshot. The scan
// is subject-major in ascending term-key order, so "first object per
// subject" and "first subject per object" reproduce LAVGraphOf's and
// WrapperOfLAVGraph's first-match semantics.
func (qc *queryCache) ensureMappingMapsLocked(o *Ontology) {
	if qc.wrapperGraph != nil {
		return
	}
	qc.wrapperGraph = map[rdf.IRI]rdf.IRI{}
	qc.graphWrapper = map[rdf.IRI]rdf.IRI{}
	qc.coveringByGraph = map[rdf.IRI][]rdf.IRI{}
	for _, q := range qc.snap.Match(store.InGraph(MappingsGraphName, nil, MMapping, nil)) {
		w, okW := q.Subject.(rdf.IRI)
		g, okG := q.Object.(rdf.IRI)
		if !okW || !okG {
			continue
		}
		if _, seen := qc.wrapperGraph[w]; !seen {
			qc.wrapperGraph[w] = g
			qc.coveringByGraph[g] = append(qc.coveringByGraph[g], w)
		}
		if _, seen := qc.graphWrapper[g]; !seen {
			qc.graphWrapper[g] = w
		}
	}
}

// WrappersCoveringTriple returns the wrappers whose LAV mapping graph
// contains the given ground triple, sorted. The result is memoized per store
// generation and must not be mutated; triples with variables or terms the
// store has never seen are covered by no wrapper.
func (o *Ontology) WrappersCoveringTriple(t rdf.Triple) []rdf.IRI {
	qc := o.queryCache()
	d := qc.snap.Dict()
	sid, okS := d.Lookup(t.Subject)
	pid, okP := d.Lookup(t.Predicate)
	oid, okO := d.Lookup(t.Object)
	if !okS || !okP || !okO {
		return nil
	}
	key := [3]rdf.TermID{sid, pid, oid}
	qc.mu.Lock()
	if ws, ok := qc.covering[key]; ok {
		qc.mu.Unlock()
		return ws
	}
	qc.ensureMappingMapsLocked(o)
	qc.mu.Unlock()

	var out []rdf.IRI
	for _, g := range qc.snap.GraphsContaining(t) {
		qc.mu.Lock()
		ws := qc.coveringByGraph[g]
		qc.mu.Unlock()
		out = append(out, ws...)
	}
	slices.Sort(out)
	qc.mu.Lock()
	qc.covering[key] = out
	qc.mu.Unlock()
	return out
}
