package core

import (
	"fmt"
	"slices"
	"sort"

	"bdi/internal/rdf"
	"bdi/internal/store"
)

// AddConcept declares a domain concept in G (an instance of G:Concept).
func (o *Ontology) AddConcept(concept rdf.IRI) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.addToGraph(GlobalGraphName, rdf.T(concept, rdf.RDFType, GConcept))
}

// AddFeature declares a feature of analysis in G (an instance of G:Feature),
// optionally typed with an XSD datatype via G:hasDatatype.
func (o *Ontology) AddFeature(feature rdf.IRI, datatype rdf.IRI) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.addToGraph(GlobalGraphName, rdf.T(feature, rdf.RDFType, GFeature)); err != nil {
		return err
	}
	if datatype != "" {
		if err := o.addToGraph(GlobalGraphName, rdf.T(feature, GHasDatatype, datatype)); err != nil {
			return err
		}
	}
	return nil
}

// HasFeature links a concept to a feature via G:hasFeature. To keep query
// rewriting unambiguous, a feature may belong to only one concept (§3.1);
// linking a feature to a second concept is an error.
func (o *Ontology) HasFeature(concept, feature rdf.IRI) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.isTypedLocked(concept, GConcept) {
		return fmt.Errorf("core: %s is not declared as a G:Concept", o.prefixes.Compact(concept))
	}
	if !o.isTypedLocked(feature, GFeature) {
		return fmt.Errorf("core: %s is not declared as a G:Feature", o.prefixes.Compact(feature))
	}
	for _, q := range o.store.Match(store.InGraph(GlobalGraphName, nil, GHasFeature, feature)) {
		if owner, ok := q.Subject.(rdf.IRI); ok && owner != concept {
			return fmt.Errorf("core: feature %s already belongs to concept %s (features may belong to only one concept)",
				o.prefixes.Compact(feature), o.prefixes.Compact(owner))
		}
	}
	return o.addToGraph(GlobalGraphName, rdf.T(concept, GHasFeature, feature))
}

// AddIdentifier declares a feature, marks it as an identifier (a subclass of
// sc:identifier) and attaches it to the concept. ID features are what the
// restricted join .̃/ operates on.
func (o *Ontology) AddIdentifier(concept, feature rdf.IRI, datatype rdf.IRI) error {
	if err := o.AddFeature(feature, datatype); err != nil {
		return err
	}
	o.mu.Lock()
	if err := o.addToGraph(GlobalGraphName, rdf.T(feature, rdf.RDFSSubClassOf, rdf.SchemaIdentifier)); err != nil {
		o.mu.Unlock()
		return err
	}
	o.mu.Unlock()
	return o.HasFeature(concept, feature)
}

// AddFeatureTo declares a (non-identifier) feature and attaches it to a
// concept in one call.
func (o *Ontology) AddFeatureTo(concept, feature rdf.IRI, datatype rdf.IRI) error {
	if err := o.AddFeature(feature, datatype); err != nil {
		return err
	}
	return o.HasFeature(concept, feature)
}

// SubFeature declares a taxonomy edge between two features (e.g.
// sup:monitorId rdfs:subClassOf sc:identifier), denoting related semantic
// domains (§3.1).
func (o *Ontology) SubFeature(sub, super rdf.IRI) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.addToGraph(GlobalGraphName, rdf.T(sub, rdf.RDFSSubClassOf, super))
}

// Relate adds a domain-specific object property edge between two concepts
// (e.g. sc:SoftwareApplication sup:hasMonitor sup:Monitor). Analysts
// navigate these edges when posing OMQs.
func (o *Ontology) Relate(subject, property, object rdf.IRI) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.isTypedLocked(subject, GConcept) {
		return fmt.Errorf("core: %s is not declared as a G:Concept", o.prefixes.Compact(subject))
	}
	if !o.isTypedLocked(object, GConcept) {
		return fmt.Errorf("core: %s is not declared as a G:Concept", o.prefixes.Compact(object))
	}
	return o.addToGraph(GlobalGraphName, rdf.T(subject, property, object))
}

// isTypedLocked reports whether the entity has the given rdf:type in G.
// Caller must hold at least a read lock.
func (o *Ontology) isTypedLocked(entity, class rdf.IRI) bool {
	return o.store.ContainsTriple(GlobalGraphName, rdf.T(entity, rdf.RDFType, class))
}

// IsConcept reports whether the IRI is declared as a G:Concept.
func (o *Ontology) IsConcept(iri rdf.IRI) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.isTypedLocked(iri, GConcept)
}

// IsFeature reports whether the IRI is declared as a G:Feature.
func (o *Ontology) IsFeature(iri rdf.IRI) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.isTypedLocked(iri, GFeature)
}

// IsIdentifier reports whether the feature is (transitively) a subclass of
// sc:identifier.
func (o *Ontology) IsIdentifier(feature rdf.IRI) bool {
	return o.engine.IsSubClassOf(feature, rdf.SchemaIdentifier)
}

// Concepts returns all declared concepts, sorted.
func (o *Ontology) Concepts() []rdf.IRI {
	return o.typedInstances(GlobalGraphName, GConcept)
}

// Features returns all declared features, sorted.
func (o *Ontology) Features() []rdf.IRI {
	return o.typedInstances(GlobalGraphName, GFeature)
}

// FeaturesOf returns the features attached to a concept via G:hasFeature,
// sorted.
func (o *Ontology) FeaturesOf(concept rdf.IRI) []rdf.IRI {
	var out []rdf.IRI
	for _, q := range o.store.Match(store.InGraph(GlobalGraphName, concept, GHasFeature, nil)) {
		if f, ok := q.Object.(rdf.IRI); ok {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConceptOfFeature returns the (single) concept owning the feature.
func (o *Ontology) ConceptOfFeature(feature rdf.IRI) (rdf.IRI, bool) {
	for _, q := range o.store.Match(store.InGraph(GlobalGraphName, nil, GHasFeature, feature)) {
		if c, ok := q.Subject.(rdf.IRI); ok {
			return c, true
		}
	}
	return "", false
}

// IdentifiersOf returns the ID features of a concept: features linked via
// G:hasFeature that are (transitively) subclasses of sc:identifier. The
// result is memoized per store generation (phase #3 resolves the ID feature
// of the same concept for every candidate walk).
func (o *Ontology) IdentifiersOf(concept rdf.IRI) []rdf.IRI {
	qc := o.queryCache()
	cid, ok := qc.snap.Dict().LookupIRI(concept)
	if !ok {
		return nil
	}
	qc.mu.Lock()
	if ids, cached := qc.identifiersOf[cid]; cached {
		qc.mu.Unlock()
		return slices.Clone(ids)
	}
	qc.mu.Unlock()
	var out []rdf.IRI
	for _, f := range o.FeaturesOf(concept) {
		if o.IsIdentifier(f) {
			out = append(out, f)
		}
	}
	qc.mu.Lock()
	qc.identifiersOf[cid] = out
	qc.mu.Unlock()
	return slices.Clone(out)
}

// DatatypeOf returns the XSD datatype attached to a feature, if any.
func (o *Ontology) DatatypeOf(feature rdf.IRI) (rdf.IRI, bool) {
	for _, q := range o.store.Match(store.InGraph(GlobalGraphName, feature, GHasDatatype, nil)) {
		if dt, ok := q.Object.(rdf.IRI); ok {
			return dt, true
		}
	}
	return "", false
}

// ConceptEdges returns the object-property edges between concepts in G
// (excluding the metamodel properties), sorted by subject/predicate/object.
func (o *Ontology) ConceptEdges() []rdf.Triple {
	var out []rdf.Triple
	for _, q := range o.store.Match(store.InGraph(GlobalGraphName, nil, nil, nil)) {
		p, ok := q.Predicate.(rdf.IRI)
		if !ok {
			continue
		}
		if p == rdf.RDFType || p == GHasFeature || p == GHasDatatype || p == rdf.RDFSSubClassOf ||
			p == rdf.RDFSDomain || p == rdf.RDFSRange || p == rdf.RDFSIsDefinedBy || p == rdf.RDFSLabel ||
			p == rdf.VANNPreferredNamespacePrefix || p == rdf.VANNPreferredNamespaceURI {
			continue
		}
		s, okS := q.Subject.(rdf.IRI)
		obj, okO := q.Object.(rdf.IRI)
		if !okS || !okO {
			continue
		}
		if o.isTypedLocked(s, GConcept) && o.isTypedLocked(obj, GConcept) {
			out = append(out, q.Triple)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func (o *Ontology) typedInstances(graph rdf.IRI, class rdf.IRI) []rdf.IRI {
	var out []rdf.IRI
	for _, q := range o.store.Match(store.InGraph(graph, nil, rdf.RDFType, class)) {
		if iri, ok := q.Subject.(rdf.IRI); ok {
			out = append(out, iri)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
