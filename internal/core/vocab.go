// Package core implements the Big Data Integration (BDI) ontology: the
// two-level RDF structure (Global graph G, Source graph S) linked by the
// Mapping graph M that governs data integration under schema evolution
// (paper §3). It provides the metadata models of Codes 6 and 7, builders for
// the Global graph, release-based evolution of the Source and Mapping graphs
// (Algorithm 1), and the accessors used by the query rewriting algorithms.
package core

import "bdi/internal/rdf"

// Namespaces of the BDI vocabulary, as published by the paper.
const (
	// NSGlobal is the namespace of the Global graph vocabulary (prefix G).
	NSGlobal = "http://www.essi.upc.edu/~snadal/BDIOntology/Global/"
	// NSSource is the namespace of the Source graph vocabulary (prefix S).
	NSSource = "http://www.essi.upc.edu/~snadal/BDIOntology/Source/"
	// NSMapping is the namespace of the Mapping graph vocabulary (prefix M).
	NSMapping = "http://www.essi.upc.edu/~snadal/BDIOntology/Mapping/"
	// NSSupersede is the namespace of the SUPERSEDE case-study vocabulary
	// (prefix sup), used by the running example.
	NSSupersede = "http://www.essi.upc.edu/~snadal/BDIOntology/SUPERSEDE/"
)

// Global graph vocabulary (Code 6).
var (
	// GConcept is the metaclass of domain concepts (maps to UML classes).
	GConcept = rdf.IRI(NSGlobal + "Concept")
	// GFeature is the metaclass of features of analysis (maps to UML attributes).
	GFeature = rdf.IRI(NSGlobal + "Feature")
	// GHasFeature links a concept to one of its features.
	GHasFeature = rdf.IRI(NSGlobal + "hasFeature")
	// GHasDatatype links a feature to its XSD datatype.
	GHasDatatype = rdf.IRI(NSGlobal + "hasDataType")
)

// Source graph vocabulary (Code 7).
var (
	// SDataSource is the metaclass of data sources (e.g. one REST API method).
	SDataSource = rdf.IRI(NSSource + "DataSource")
	// SWrapper is the metaclass of wrappers; each wrapper models one schema
	// version of its data source.
	SWrapper = rdf.IRI(NSSource + "Wrapper")
	// SAttribute is the metaclass of attributes projected by wrappers.
	SAttribute = rdf.IRI(NSSource + "Attribute")
	// SHasWrapper links a data source to its wrappers.
	SHasWrapper = rdf.IRI(NSSource + "hasWrapper")
	// SHasAttribute links a wrapper to the attributes it projects.
	SHasAttribute = rdf.IRI(NSSource + "hasAttribute")
)

// Mapping graph vocabulary (§3.3).
var (
	// MMapping links a wrapper to the named graph holding its LAV mapping
	// (the subgraph of G it provides data for).
	MMapping = rdf.IRI(NSMapping + "mapping")
	// MRegistrationOrder annotates a wrapper with the sequence number of the
	// release that registered it. It supports historical queries ("as of
	// release n") and latest-version-only query policies; it lives in M so
	// that the growth analysis of S (§6.4) is unaffected.
	MRegistrationOrder = rdf.IRI(NSMapping + "registrationOrder")
)

// Named graphs of the ontology T = ⟨G, S, M⟩.
var (
	// GlobalGraphName is the named graph holding G.
	GlobalGraphName = rdf.IRI(NSGlobal[:len(NSGlobal)-1])
	// SourceGraphName is the named graph holding S.
	SourceGraphName = rdf.IRI(NSSource[:len(NSSource)-1])
	// MappingsGraphName is the named graph holding the owl:sameAs side of M
	// (per-wrapper LAV subgraphs live in their own named graphs).
	MappingsGraphName = rdf.IRI(NSMapping[:len(NSMapping)-1])
)

// SourceURI returns the IRI identifying a data source in S.
func SourceURI(source string) rdf.IRI {
	return rdf.IRI(NSSource + "DataSource/" + source)
}

// WrapperURI returns the IRI identifying a wrapper in S.
func WrapperURI(wrapper string) rdf.IRI {
	return rdf.IRI(NSSource + "Wrapper/" + wrapper)
}

// AttributeURI returns the IRI identifying a wrapper attribute in S. Per
// §3.2 the attribute name is prefixed with its data source so that attribute
// reuse only happens within the same source.
func AttributeURI(source, attribute string) rdf.IRI {
	return rdf.IRI(string(SourceURI(source)) + "/" + attribute)
}

// AttributeName extracts the "source/attribute" part of an attribute IRI,
// i.e. the name under which the executor and wrappers know the column.
func AttributeName(attr rdf.IRI) string {
	s := string(attr)
	prefix := NSSource + "DataSource/"
	if len(s) > len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):]
	}
	return attr.LocalName()
}

// MappingGraphURI returns the name of the named graph holding the LAV
// mapping subgraph of a wrapper.
func MappingGraphURI(wrapper string) rdf.IRI {
	return rdf.IRI(NSMapping + "graph/" + wrapper)
}

// DefaultPrefixes returns the prefix map used when serializing or displaying
// the ontology: the standard vocabularies plus G, S, M and sup.
func DefaultPrefixes() *rdf.PrefixMap {
	pm := rdf.DefaultPrefixes()
	pm.Bind("G", NSGlobal)
	pm.Bind("S", NSSource)
	pm.Bind("M", NSMapping)
	pm.Bind("sup", NSSupersede)
	return pm
}
