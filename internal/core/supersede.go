package core

import (
	"fmt"

	"bdi/internal/rdf"
)

// The SUPERSEDE running example (paper §2.1 and Figures 2-6). These
// definitions are shared by tests, examples and experiments.
var (
	// Concepts.
	SupSoftwareApplication = rdf.SchemaSoftwareApplication
	SupMonitor             = rdf.IRI(NSSupersede + "Monitor")
	SupFeedbackGathering   = rdf.IRI(NSSupersede + "FeedbackGathering")
	SupInfoMonitor         = rdf.IRI(NSSupersede + "InfoMonitor")
	SupUserFeedback        = rdf.IRI(NSSupersede + "UserFeedback")

	// Features.
	SupApplicationID       = rdf.IRI(NSSupersede + "applicationId")
	SupMonitorID           = rdf.IRI(NSSupersede + "monitorId")
	SupFeedbackGatheringID = rdf.IRI(NSSupersede + "feedbackGatheringId")
	SupLagRatio            = rdf.IRI(NSSupersede + "lagRatio")
	SupDescription         = rdf.IRI(NSSupersede + "description")

	// Object properties.
	SupHasMonitor   = rdf.IRI(NSSupersede + "hasMonitor")
	SupHasFGTool    = rdf.IRI(NSSupersede + "hasFGTool")
	SupGeneratesQoS = rdf.IRI(NSSupersede + "generatesQoS")
	SupGeneratesUF  = rdf.IRI(NSSupersede + "generatesUF")
)

// BuildSupersedeGlobalGraph populates G with the SUPERSEDE conceptual model
// of Figure 2/3: SoftwareApplication, Monitor, FeedbackGathering,
// InfoMonitor and UserFeedback with their features and relationships.
func BuildSupersedeGlobalGraph(o *Ontology) error {
	steps := []func() error{
		func() error { return o.AddConcept(SupSoftwareApplication) },
		func() error { return o.AddConcept(SupMonitor) },
		func() error { return o.AddConcept(SupFeedbackGathering) },
		func() error { return o.AddConcept(SupInfoMonitor) },
		func() error { return o.AddConcept(SupUserFeedback) },

		func() error { return o.AddIdentifier(SupSoftwareApplication, SupApplicationID, rdf.XSDInteger) },
		func() error { return o.AddIdentifier(SupMonitor, SupMonitorID, rdf.XSDInteger) },
		func() error { return o.AddIdentifier(SupFeedbackGathering, SupFeedbackGatheringID, rdf.XSDInteger) },
		// InfoMonitor and UserFeedback are event concepts without identifiers
		// of their own (as in Figure 3): they are reached through the Monitor
		// and FeedbackGathering tools that generate them.
		func() error { return o.AddFeatureTo(SupInfoMonitor, SupLagRatio, rdf.XSDDouble) },
		func() error { return o.AddFeatureTo(SupUserFeedback, SupDescription, rdf.XSDString) },

		func() error { return o.Relate(SupSoftwareApplication, SupHasMonitor, SupMonitor) },
		func() error { return o.Relate(SupSoftwareApplication, SupHasFGTool, SupFeedbackGathering) },
		func() error { return o.Relate(SupMonitor, SupGeneratesQoS, SupInfoMonitor) },
		func() error { return o.Relate(SupFeedbackGathering, SupGeneratesUF, SupUserFeedback) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			return fmt.Errorf("core: building SUPERSEDE global graph (step %d): %w", i, err)
		}
	}
	return nil
}

// SupersedeReleaseW1 is the release registering wrapper w1 over the VoD
// monitoring API D1: w1(VoDmonitorId, lagRatio).
func SupersedeReleaseW1() Release {
	g := rdf.NewGraph("")
	g.Add(
		rdf.T(SupMonitor, SupGeneratesQoS, SupInfoMonitor),
		rdf.T(SupMonitor, GHasFeature, SupMonitorID),
		rdf.T(SupInfoMonitor, GHasFeature, SupLagRatio),
	)
	return Release{
		Wrapper: WrapperSpec{
			Name:            "w1",
			Source:          "D1",
			IDAttributes:    []string{"VoDmonitorId"},
			NonIDAttributes: []string{"lagRatio"},
		},
		Subgraph: g,
		F: map[string]rdf.IRI{
			"VoDmonitorId": SupMonitorID,
			"lagRatio":     SupLagRatio,
		},
	}
}

// SupersedeReleaseW2 registers wrapper w2 over the feedback gathering API
// D2: w2(FGId, tweet).
func SupersedeReleaseW2() Release {
	g := rdf.NewGraph("")
	g.Add(
		rdf.T(SupFeedbackGathering, SupGeneratesUF, SupUserFeedback),
		rdf.T(SupFeedbackGathering, GHasFeature, SupFeedbackGatheringID),
		rdf.T(SupUserFeedback, GHasFeature, SupDescription),
	)
	return Release{
		Wrapper: WrapperSpec{
			Name:            "w2",
			Source:          "D2",
			IDAttributes:    []string{"FGId"},
			NonIDAttributes: []string{"tweet"},
		},
		Subgraph: g,
		F: map[string]rdf.IRI{
			"FGId":  SupFeedbackGatheringID,
			"tweet": SupDescription,
		},
	}
}

// SupersedeReleaseW3 registers wrapper w3 over the relationship API D3:
// w3(TargetApp, MonitorId, FeedbackId).
func SupersedeReleaseW3() Release {
	g := rdf.NewGraph("")
	g.Add(
		rdf.T(SupSoftwareApplication, SupHasMonitor, SupMonitor),
		rdf.T(SupSoftwareApplication, SupHasFGTool, SupFeedbackGathering),
		rdf.T(SupSoftwareApplication, GHasFeature, SupApplicationID),
		rdf.T(SupMonitor, GHasFeature, SupMonitorID),
		rdf.T(SupFeedbackGathering, GHasFeature, SupFeedbackGatheringID),
	)
	return Release{
		Wrapper: WrapperSpec{
			Name:         "w3",
			Source:       "D3",
			IDAttributes: []string{"TargetApp", "MonitorId", "FeedbackId"},
		},
		Subgraph: g,
		F: map[string]rdf.IRI{
			"TargetApp":  SupApplicationID,
			"MonitorId":  SupMonitorID,
			"FeedbackId": SupFeedbackGatheringID,
		},
	}
}

// SupersedeReleaseW4 registers wrapper w4, the evolved schema version of D1
// in which lagRatio has been renamed to bufferingRatio (§2.1 / §4.1).
func SupersedeReleaseW4() Release {
	g := rdf.NewGraph("")
	g.Add(
		rdf.T(SupMonitor, SupGeneratesQoS, SupInfoMonitor),
		rdf.T(SupMonitor, GHasFeature, SupMonitorID),
		rdf.T(SupInfoMonitor, GHasFeature, SupLagRatio),
	)
	return Release{
		Wrapper: WrapperSpec{
			Name:            "w4",
			Source:          "D1",
			IDAttributes:    []string{"VoDmonitorId"},
			NonIDAttributes: []string{"bufferingRatio"},
		},
		Subgraph: g,
		F: map[string]rdf.IRI{
			"VoDmonitorId":   SupMonitorID,
			"bufferingRatio": SupLagRatio,
		},
	}
}

// SupersedeReleases returns the running example's wrapper releases in
// registration order: w1, w2, w3 and — with withEvolution — w4 (the
// evolved D1 schema). Both BuildSupersedeOntology and consumers seeding an
// existing (e.g. recovered) ontology share this list.
func SupersedeReleases(withEvolution bool) []Release {
	releases := []Release{SupersedeReleaseW1(), SupersedeReleaseW2(), SupersedeReleaseW3()}
	if withEvolution {
		releases = append(releases, SupersedeReleaseW4())
	}
	return releases
}

// BuildSupersedeOntology builds the complete running-example ontology: the
// Global graph plus releases for w1, w2 and w3. Set withEvolution to also
// register w4 (the evolved D1 schema).
func BuildSupersedeOntology(withEvolution bool) (*Ontology, error) {
	o := NewOntology()
	if err := BuildSupersedeGlobalGraph(o); err != nil {
		return nil, err
	}
	for _, r := range SupersedeReleases(withEvolution) {
		if _, err := o.NewRelease(r); err != nil {
			return nil, fmt.Errorf("core: registering release for %s: %w", r.Wrapper.Name, err)
		}
	}
	return o, nil
}
