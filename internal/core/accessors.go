package core

import (
	"slices"

	"bdi/internal/rdf"
	"bdi/internal/store"
)

// DataSources returns all registered data source IRIs, sorted.
func (o *Ontology) DataSources() []rdf.IRI {
	return o.typedInstances(SourceGraphName, SDataSource)
}

// Wrappers returns all registered wrapper IRIs, sorted.
func (o *Ontology) Wrappers() []rdf.IRI {
	return o.typedInstances(SourceGraphName, SWrapper)
}

// Attributes returns all registered attribute IRIs, sorted.
func (o *Ontology) Attributes() []rdf.IRI {
	return o.typedInstances(SourceGraphName, SAttribute)
}

// WrappersOfSource returns the wrappers (schema versions) registered for a
// data source.
func (o *Ontology) WrappersOfSource(source string) []rdf.IRI {
	var out []rdf.IRI
	for _, q := range o.store.Match(store.InGraph(SourceGraphName, SourceURI(source), SHasWrapper, nil)) {
		if w, ok := q.Object.(rdf.IRI); ok {
			out = append(out, w)
		}
	}
	slices.Sort(out)
	return out
}

// SourceOfWrapper returns the data source IRI a wrapper belongs to,
// memoized per store generation.
func (o *Ontology) SourceOfWrapper(wrapper rdf.IRI) (rdf.IRI, bool) {
	qc := o.queryCache()
	wid, ok := qc.snap.Dict().LookupIRI(wrapper)
	if !ok {
		return "", false
	}
	qc.mu.Lock()
	if s, cached := qc.sourceOf[wid]; cached {
		qc.mu.Unlock()
		return s, s != ""
	}
	qc.mu.Unlock()
	var found rdf.IRI
	for _, q := range qc.snap.Match(store.InGraph(SourceGraphName, nil, SHasWrapper, wrapper)) {
		if s, ok := q.Subject.(rdf.IRI); ok {
			found = s
			break
		}
	}
	qc.mu.Lock()
	qc.sourceOf[wid] = found
	qc.mu.Unlock()
	return found, found != ""
}

// AttributesOfWrapper returns the attribute IRIs projected by a wrapper,
// sorted.
func (o *Ontology) AttributesOfWrapper(wrapper rdf.IRI) []rdf.IRI {
	var out []rdf.IRI
	for _, q := range o.store.Match(store.InGraph(SourceGraphName, wrapper, SHasAttribute, nil)) {
		if a, ok := q.Object.(rdf.IRI); ok {
			out = append(out, a)
		}
	}
	slices.Sort(out)
	return out
}

// LAVGraphOf returns the named graph holding the LAV mapping of a wrapper.
func (o *Ontology) LAVGraphOf(wrapper rdf.IRI) (rdf.IRI, bool) {
	for _, q := range o.store.Match(store.InGraph(MappingsGraphName, wrapper, MMapping, nil)) {
		if g, ok := q.Object.(rdf.IRI); ok {
			return g, true
		}
	}
	return "", false
}

// LAVMappingOf materializes the LAV mapping subgraph of a wrapper.
func (o *Ontology) LAVMappingOf(wrapper rdf.IRI) (*rdf.Graph, bool) {
	g, ok := o.LAVGraphOf(wrapper)
	if !ok {
		return nil, false
	}
	return o.store.NamedGraph(g), true
}

// WrapperOfLAVGraph returns the wrapper whose mapping lives in the given
// named graph.
func (o *Ontology) WrapperOfLAVGraph(graph rdf.IRI) (rdf.IRI, bool) {
	for _, q := range o.store.Match(store.InGraph(MappingsGraphName, nil, MMapping, graph)) {
		if w, ok := q.Subject.(rdf.IRI); ok {
			return w, true
		}
	}
	return "", false
}

// FeatureOfAttribute resolves F for one attribute: the feature the attribute
// is owl:sameAs-linked to. Memoized per store generation.
func (o *Ontology) FeatureOfAttribute(attr rdf.IRI) (rdf.IRI, bool) {
	qc := o.queryCache()
	aid, ok := qc.snap.Dict().LookupIRI(attr)
	if !ok {
		return "", false
	}
	qc.mu.Lock()
	if f, cached := qc.featureOfAttr[aid]; cached {
		qc.mu.Unlock()
		return f, f != ""
	}
	qc.mu.Unlock()
	var found rdf.IRI
	for _, q := range qc.snap.Match(store.InGraph(MappingsGraphName, attr, rdf.OWLSameAs, nil)) {
		if f, ok := q.Object.(rdf.IRI); ok {
			found = f
			break
		}
	}
	qc.mu.Lock()
	qc.featureOfAttr[aid] = found
	qc.mu.Unlock()
	return found, found != ""
}

// AttributesOfFeature returns the inverse of F: all source attributes that
// map to the given feature, sorted. Memoized per store generation.
func (o *Ontology) AttributesOfFeature(feature rdf.IRI) []rdf.IRI {
	qc := o.queryCache()
	fid, ok := qc.snap.Dict().LookupIRI(feature)
	if !ok {
		return nil
	}
	qc.mu.Lock()
	if attrs, cached := qc.attrsOf[fid]; cached {
		qc.mu.Unlock()
		return slices.Clone(attrs)
	}
	qc.mu.Unlock()
	var out []rdf.IRI
	for _, q := range qc.snap.Match(store.InGraph(MappingsGraphName, nil, rdf.OWLSameAs, feature)) {
		if a, ok := q.Subject.(rdf.IRI); ok {
			out = append(out, a)
		}
	}
	slices.Sort(out)
	qc.mu.Lock()
	qc.attrsOf[fid] = out
	qc.mu.Unlock()
	return slices.Clone(out)
}

// AttributeOfFeatureInWrapper resolves, for a given wrapper and feature, the
// wrapper attribute providing it (Algorithm 4, line 10: the attribute that
// is owl:sameAs the feature and S:hasAttribute-linked to the wrapper). The
// resolution is memoized per store generation: phase #3 asks the same
// (wrapper, feature) pairs once per candidate walk.
func (o *Ontology) AttributeOfFeatureInWrapper(wrapper, feature rdf.IRI) (rdf.IRI, bool) {
	qc := o.queryCache()
	d := qc.snap.Dict()
	wid, okW := d.LookupIRI(wrapper)
	fid, okF := d.LookupIRI(feature)
	if !okW || !okF {
		// An un-interned wrapper or feature appears in no triple; the slow
		// path below would find nothing.
		return "", false
	}
	key := [2]rdf.TermID{wid, fid}
	qc.mu.Lock()
	if attr, ok := qc.attrOf[key]; ok {
		qc.mu.Unlock()
		return attr, attr != ""
	}
	qc.mu.Unlock()
	var found rdf.IRI
	for _, attr := range o.AttributesOfFeature(feature) {
		if qc.snap.ContainsTriple(SourceGraphName, rdf.T(wrapper, SHasAttribute, attr)) {
			found = attr
			break
		}
	}
	qc.mu.Lock()
	qc.attrOf[key] = found
	qc.mu.Unlock()
	return found, found != ""
}

// WrappersProvidingFeature returns the wrappers whose LAV mapping graph
// contains the triple ⟨concept, G:hasFeature, feature⟩ (Algorithm 4, line 8).
// Memoized per store generation, with the graph→wrapper resolution served
// from the cached mapping maps instead of a store probe per graph.
func (o *Ontology) WrappersProvidingFeature(concept, feature rdf.IRI) []rdf.IRI {
	qc := o.queryCache()
	d := qc.snap.Dict()
	cid, okC := d.LookupIRI(concept)
	fid, okF := d.LookupIRI(feature)
	if !okC || !okF {
		return nil
	}
	key := [2]rdf.TermID{cid, fid}
	qc.mu.Lock()
	if ws, ok := qc.providers[key]; ok {
		qc.mu.Unlock()
		return slices.Clone(ws)
	}
	qc.ensureMappingMapsLocked(o)
	graphWrapper := qc.graphWrapper
	qc.mu.Unlock()

	target := rdf.T(concept, GHasFeature, feature)
	var out []rdf.IRI
	for _, g := range qc.snap.GraphsContaining(target) {
		if !isLAVGraph(g) {
			continue
		}
		if w, ok := graphWrapper[g]; ok {
			out = append(out, w)
		}
	}
	slices.Sort(out)
	qc.mu.Lock()
	qc.providers[key] = out
	qc.mu.Unlock()
	return slices.Clone(out)
}

// WrappersProvidingEdge returns the wrappers whose LAV mapping graph
// contains any edge from one concept to another (Algorithm 5, lines 9-10).
// One subject+object index probe replaces the per-graph scan of the naive
// formulation, and the result is memoized per store generation (phase #3
// asks the same concept pairs for every walk combination).
func (o *Ontology) WrappersProvidingEdge(from, to rdf.IRI) []rdf.IRI {
	qc := o.queryCache()
	d := qc.snap.Dict()
	fid, okF := d.LookupIRI(from)
	tid, okT := d.LookupIRI(to)
	if !okF || !okT {
		return nil
	}
	key := [2]rdf.TermID{fid, tid}
	qc.mu.Lock()
	if ws, ok := qc.edges[key]; ok {
		qc.mu.Unlock()
		return slices.Clone(ws)
	}
	qc.ensureMappingMapsLocked(o)
	graphWrapper := qc.graphWrapper
	qc.mu.Unlock()

	seen := map[rdf.IRI]bool{}
	var out []rdf.IRI
	for _, q := range qc.snap.Match(store.WildcardGraph(from, nil, to)) {
		g := q.Graph
		if !isLAVGraph(g) {
			continue
		}
		if w, ok := graphWrapper[g]; ok && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	slices.Sort(out)
	qc.mu.Lock()
	qc.edges[key] = out
	qc.mu.Unlock()
	return slices.Clone(out)
}

// WrapperLocalName converts a wrapper IRI into the wrapper name used by the
// wrapper registry (the IRI local name).
func WrapperLocalName(wrapper rdf.IRI) string { return wrapper.LocalName() }

// SourceLocalName converts a data source IRI into its plain name.
func SourceLocalName(source rdf.IRI) string { return source.LocalName() }

// RegistrationOrder returns the release sequence number assigned to a
// wrapper when it was registered (1-based), or false when the wrapper is
// unknown or predates sequence tracking.
func (o *Ontology) RegistrationOrder(wrapper rdf.IRI) (int, bool) {
	for _, q := range o.store.Match(store.InGraph(MappingsGraphName, wrapper, MRegistrationOrder, nil)) {
		if lit, ok := q.Object.(rdf.Literal); ok {
			if n, ok := lit.Integer(); ok {
				return int(n), true
			}
		}
	}
	return 0, false
}

// LatestWrapperOfSource returns the most recently registered wrapper (i.e.
// the newest schema version) of a data source.
func (o *Ontology) LatestWrapperOfSource(source string) (rdf.IRI, bool) {
	best := rdf.IRI("")
	bestSeq := -1
	for _, w := range o.WrappersOfSource(source) {
		seq, ok := o.RegistrationOrder(w)
		if !ok {
			continue
		}
		if seq > bestSeq {
			best, bestSeq = w, seq
		}
	}
	return best, bestSeq >= 0
}

// CurrentWrappers returns, for every data source, its latest wrapper. It is
// the wrapper set used by the "latest versions only" query policy.
func (o *Ontology) CurrentWrappers() map[rdf.IRI]rdf.IRI {
	out := map[rdf.IRI]rdf.IRI{}
	for _, ds := range o.DataSources() {
		if w, ok := o.LatestWrapperOfSource(SourceLocalName(ds)); ok {
			out[ds] = w
		}
	}
	return out
}
