package core

import (
	"fmt"
	"sort"

	"bdi/internal/rdf"
	"bdi/internal/store"
)

// WrapperSpec describes a wrapper being registered through a release: its
// name, the data source it queries, and its ID / non-ID attributes (the
// relation w(a_ID, a_nID) of §2.2).
type WrapperSpec struct {
	Name            string
	Source          string
	IDAttributes    []string
	NonIDAttributes []string
}

// Attributes returns all attribute names of the wrapper (IDs first).
func (w WrapperSpec) Attributes() []string {
	return append(append([]string(nil), w.IDAttributes...), w.NonIDAttributes...)
}

// Validate checks the spec for basic problems.
func (w WrapperSpec) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("core: wrapper spec has no name")
	}
	if w.Source == "" {
		return fmt.Errorf("core: wrapper %q has no data source", w.Name)
	}
	seen := map[string]bool{}
	for _, a := range w.Attributes() {
		if a == "" {
			return fmt.Errorf("core: wrapper %q has an empty attribute name", w.Name)
		}
		if seen[a] {
			return fmt.Errorf("core: wrapper %q declares attribute %q twice", w.Name, a)
		}
		seen[a] = true
	}
	return nil
}

// Release is the construct the data steward creates upon a new source
// version (§4.1): R = ⟨w, G, F⟩ where w is the wrapper, G is the subgraph of
// the Global graph the wrapper contributes to, and F maps each wrapper
// attribute to the feature of G it provides.
type Release struct {
	Wrapper WrapperSpec
	// Subgraph is the fragment of G covered by the wrapper (the LAV mapping
	// graph).
	Subgraph *rdf.Graph
	// F maps wrapper attribute names to feature IRIs in G.
	F map[string]rdf.IRI
}

// Validate checks the release: the wrapper spec must be valid, every
// attribute mapped by F must belong to the wrapper, every target must be a
// feature vertex of the subgraph, and the subgraph must be a subgraph of G.
func (r Release) Validate(o *Ontology) error {
	if err := r.Wrapper.Validate(); err != nil {
		return err
	}
	if r.Subgraph == nil || r.Subgraph.Len() == 0 {
		return fmt.Errorf("core: release for wrapper %q has an empty LAV subgraph", r.Wrapper.Name)
	}
	if !o.GlobalGraph().Subsumes(r.Subgraph) {
		return fmt.Errorf("core: release subgraph for wrapper %q is not a subgraph of G", r.Wrapper.Name)
	}
	attrs := map[string]bool{}
	for _, a := range r.Wrapper.Attributes() {
		attrs[a] = true
	}
	for attr, feature := range r.F {
		if !attrs[attr] {
			return fmt.Errorf("core: release maps unknown attribute %q of wrapper %q", attr, r.Wrapper.Name)
		}
		if !o.IsFeature(feature) {
			return fmt.Errorf("core: release maps attribute %q to %s which is not a G:Feature", attr, o.prefixes.Compact(feature))
		}
		if !r.Subgraph.ContainsNode(feature) {
			return fmt.Errorf("core: release maps attribute %q to feature %s which is not part of the LAV subgraph", attr, o.prefixes.Compact(feature))
		}
	}
	return nil
}

// ReleaseResult reports what Algorithm 1 changed in the ontology.
type ReleaseResult struct {
	// NewSource is true when the data source was registered for the first time.
	NewSource bool
	// NewAttributes lists the attribute IRIs added to S (attributes already
	// present from previous schema versions are reused).
	NewAttributes []rdf.IRI
	// ReusedAttributes lists the attribute IRIs that already existed.
	ReusedAttributes []rdf.IRI
	// TriplesAdded is the total number of quads added across S and M.
	TriplesAdded int
	// SourceTriplesAdded is the number of triples added to S only (the growth
	// metric of Figure 11).
	SourceTriplesAdded int
	// Sequence is the global registration sequence number assigned to the
	// release (1 for the first release registered in the ontology).
	Sequence int
	// Delta is the invalidation footprint of the release: the concepts,
	// features, attributes and edges whose rewriting answers the release can
	// affect. Caches use it to retire only footprint-intersecting entries.
	Delta *ReleaseDelta
}

// NewRelease implements Algorithm 1 (Adapt to Release): it registers the
// data source (if new), the wrapper, and its attributes in S; registers the
// wrapper's LAV named graph in M; and serializes the attribute-to-feature
// function F via owl:sameAs links.
//
// The whole release is written as one atomic store batch: existence checks
// (source registration, attribute reuse, the sequence number) only consult
// pre-release state — within-release duplicates are impossible because the
// wrapper spec validates attribute uniqueness — so every quad is collected
// first and published with a single AddAll. Readers therefore never
// observe a half-registered release, and the store merges each touched
// index bucket once instead of once per triple.
func (o *Ontology) NewRelease(r Release) (*ReleaseResult, error) {
	if err := r.Validate(o); err != nil {
		return nil, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()

	res := &ReleaseResult{}
	sn := o.store.Snapshot()
	sBefore := sn.GraphLen(SourceGraphName)
	totalBefore := sn.Len()
	var pending []rdf.Quad
	add := func(graph rdf.IRI, t rdf.Triple) {
		pending = append(pending, rdf.Quad{Triple: t, Graph: graph})
	}

	sourceURI := SourceURI(r.Wrapper.Source)
	// Line 3-5: register the data source if it is new.
	if !sn.ContainsTriple(SourceGraphName, rdf.T(sourceURI, rdf.RDFType, SDataSource)) {
		res.NewSource = true
		add(SourceGraphName, rdf.T(sourceURI, rdf.RDFType, SDataSource))
	}

	// Lines 6-8: register the wrapper and link it to its source.
	wrapperURI := WrapperURI(r.Wrapper.Name)
	if sn.ContainsTriple(SourceGraphName, rdf.T(wrapperURI, rdf.RDFType, SWrapper)) {
		return nil, fmt.Errorf("core: wrapper %q is already registered; releases are immutable", r.Wrapper.Name)
	}
	add(SourceGraphName, rdf.T(wrapperURI, rdf.RDFType, SWrapper))
	add(SourceGraphName, rdf.T(sourceURI, SHasWrapper, wrapperURI))

	// Lines 9-15: register attributes, reusing those already present for the
	// same data source (attribute URIs are prefixed with the source).
	for _, a := range r.Wrapper.Attributes() {
		attrURI := AttributeURI(r.Wrapper.Source, a)
		if sn.ContainsTriple(SourceGraphName, rdf.T(attrURI, rdf.RDFType, SAttribute)) {
			res.ReusedAttributes = append(res.ReusedAttributes, attrURI)
		} else {
			res.NewAttributes = append(res.NewAttributes, attrURI)
			add(SourceGraphName, rdf.T(attrURI, rdf.RDFType, SAttribute))
		}
		add(SourceGraphName, rdf.T(wrapperURI, SHasAttribute, attrURI))
	}

	// Line 16: register the wrapper's LAV named graph in M, together with the
	// release sequence number used by historical query policies.
	lavGraph := MappingGraphURI(r.Wrapper.Name)
	add(MappingsGraphName, rdf.T(wrapperURI, MMapping, lavGraph))
	seq := len(sn.Match(store.InGraph(MappingsGraphName, nil, MRegistrationOrder, nil))) + 1
	res.Sequence = seq
	add(MappingsGraphName, rdf.Triple{
		Subject:   wrapperURI,
		Predicate: MRegistrationOrder,
		Object:    rdf.NewIntegerLiteral(int64(seq)),
	})
	for _, t := range r.Subgraph.Triples {
		add(lavGraph, t)
	}

	// Lines 17-21: serialize F as owl:sameAs links between S attributes and
	// G features.
	attrs := make([]string, 0, len(r.F))
	for a := range r.F {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		attrURI := AttributeURI(r.Wrapper.Source, a)
		add(MappingsGraphName, rdf.T(attrURI, rdf.OWLSameAs, r.F[a]))
	}

	// The delta is derived from the pre-release snapshot (reused-attribute
	// links must be the pre-release ones) before the batch is published.
	res.Delta = computeReleaseDelta(sn, r, seq)

	// One snapshot publication for the whole release. Quads already present
	// from earlier releases (e.g. an owl:sameAs link of a reused attribute)
	// are skipped by the store, exactly as the per-triple path ignored them.
	if _, err := o.store.AddAll(pending); err != nil {
		return nil, fmt.Errorf("core: registering release of wrapper %q: %w", r.Wrapper.Name, err)
	}
	after := o.store.Snapshot()
	res.SourceTriplesAdded = after.GraphLen(SourceGraphName) - sBefore
	res.TriplesAdded = after.Len() - totalBefore
	// Publish the delta span so caches validating across (pre, post] can
	// invalidate incrementally. Mutations that bypass this path (Global-graph
	// edits, administrative removals, direct store writes) leave their
	// generations unexplained, which DeltasBetween reports as "not covered"
	// and caches answer with a full flush. The release batch is exactly one
	// snapshot publication (a release always adds at least the wrapper typing
	// triple); if the interval spans more than one generation, a direct store
	// write raced the release, and claiming the interval would let caches
	// retain entries the foreign write invalidated — leave it unexplained.
	if after.Generation() == sn.Generation()+1 {
		o.recordDeltaLocked(sn.Generation(), after.Generation(), res.Delta)
		if o.releaseHook != nil {
			span := DeltaSpan{From: sn.Generation(), To: after.Generation(), Delta: res.Delta}
			if err := o.releaseHook(span); err != nil {
				return res, fmt.Errorf("core: journaling release of wrapper %q (release applied; recovery falls back to full cache invalidation): %w", r.Wrapper.Name, err)
			}
		}
	}
	return res, nil
}

// RemoveWrapperRegistration removes a wrapper from S and M. The paper never
// deletes ontology elements (historic backwards compatibility, §6.2); this
// operation exists for administrative corrections only and is not used by
// the evolution workflow.
func (o *Ontology) RemoveWrapperRegistration(wrapperName string) int {
	o.mu.Lock()
	defer o.mu.Unlock()
	removed := 0
	wrapperURI := WrapperURI(wrapperName)
	for _, q := range o.store.Match(store.WildcardGraph(wrapperURI, nil, nil)) {
		if o.store.Remove(q) {
			removed++
		}
	}
	for _, q := range o.store.Match(store.WildcardGraph(nil, nil, wrapperURI)) {
		if o.store.Remove(q) {
			removed++
		}
	}
	removed += o.store.RemoveGraph(MappingGraphURI(wrapperName))
	return removed
}
