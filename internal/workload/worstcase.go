// Package workload builds the deterministic workloads of the paper's
// evaluation: the worst-case query-answering experiment of Figure 8, the
// Wordpress REST API release trace of Figure 11, the real-world API change
// profiles of Table 6, and the SUPERSEDE running example data (Table 1) used
// by the examples and benchmarks.
package workload

import (
	"fmt"

	"bdi/internal/core"
	"bdi/internal/rdf"
	"bdi/internal/relational"
	"bdi/internal/rewriting"
	"bdi/internal/wrapper"
)

// NSWorst is the namespace of the synthetic worst-case vocabulary.
const NSWorst = "http://www.essi.upc.edu/~snadal/BDIOntology/WorstCase/"

// WorstCase is the synthetic setting of §5.3 / Figure 8: a query navigating
// over a chain of C concepts where each concept is served by W wrappers from
// W pairwise distinct data sources, making every combination of one wrapper
// per concept a covering and minimal walk (W^C walks in total).
type WorstCase struct {
	Concepts           int
	WrappersPerConcept int
	Ontology           *core.Ontology
	Query              *rewriting.OMQ
	Registry           *wrapper.Registry
}

// conceptIRI returns the IRI of the i-th synthetic concept (0-based).
func conceptIRI(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("%sC%d", NSWorst, i)) }

// idFeature returns the identifier feature of the i-th concept. The local
// name is kept globally unique so that answer columns do not collide.
func idFeature(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("%sc%d_id", NSWorst, i)) }

// valueFeature returns the non-identifier feature of the i-th concept.
func valueFeature(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("%sc%d_value", NSWorst, i)) }

// edgeProperty returns the object property linking concept i to concept i+1.
func edgeProperty(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("%sc%d_next", NSWorst, i)) }

// BuildWorstCase constructs the ontology, OMQ and (small) data registry for
// the worst-case experiment with the given number of chained concepts and
// disjoint wrappers per concept. Each wrapper carries three rows, as in the
// rewriting-focused Figure 8 experiment.
func BuildWorstCase(concepts, wrappersPerConcept int) (*WorstCase, error) {
	return BuildWorstCaseRows(concepts, wrappersPerConcept, 3)
}

// BuildWorstCaseRows is BuildWorstCase with a configurable number of rows
// per wrapper, for execution-focused experiments: row k of every wrapper of
// concept i carries id k (so the chain joins are one-to-one) and a value
// derived from (i, k), making the answer deterministic and of exactly
// rowsPerWrapper rows regardless of how many wrappers serve each concept.
func BuildWorstCaseRows(concepts, wrappersPerConcept, rowsPerWrapper int) (*WorstCase, error) {
	if concepts < 1 || wrappersPerConcept < 1 || rowsPerWrapper < 1 {
		return nil, fmt.Errorf("workload: concepts, wrappers per concept and rows per wrapper must be positive")
	}
	o := core.NewOntology()
	reg := wrapper.NewRegistry()

	// Global graph: the chain of concepts with an ID and a value feature each.
	for i := 0; i < concepts; i++ {
		if err := o.AddConcept(conceptIRI(i)); err != nil {
			return nil, err
		}
		if err := o.AddIdentifier(conceptIRI(i), idFeature(i), rdf.XSDInteger); err != nil {
			return nil, err
		}
		if err := o.AddFeatureTo(conceptIRI(i), valueFeature(i), rdf.XSDDouble); err != nil {
			return nil, err
		}
	}
	for i := 0; i+1 < concepts; i++ {
		if err := o.Relate(conceptIRI(i), edgeProperty(i), conceptIRI(i+1)); err != nil {
			return nil, err
		}
	}

	// Source graph: wrappersPerConcept wrappers per concept, each from its
	// own data source, each providing the concept's ID and value and, for
	// non-terminal concepts, the edge to the next concept together with the
	// next concept's ID (needed to discover the restricted join).
	for i := 0; i < concepts; i++ {
		for j := 0; j < wrappersPerConcept; j++ {
			name := fmt.Sprintf("w_c%d_%d", i, j)
			source := fmt.Sprintf("S_c%d_%d", i, j)
			spec := core.WrapperSpec{
				Name:            name,
				Source:          source,
				IDAttributes:    []string{fmt.Sprintf("c%d_id", i)},
				NonIDAttributes: []string{fmt.Sprintf("c%d_value", i)},
			}
			g := rdf.NewGraph("")
			g.Add(
				rdf.T(conceptIRI(i), core.GHasFeature, idFeature(i)),
				rdf.T(conceptIRI(i), core.GHasFeature, valueFeature(i)),
			)
			f := map[string]rdf.IRI{
				fmt.Sprintf("c%d_id", i):    idFeature(i),
				fmt.Sprintf("c%d_value", i): valueFeature(i),
			}
			if i+1 < concepts {
				nextID := fmt.Sprintf("c%d_id", i+1)
				spec.IDAttributes = append(spec.IDAttributes, nextID)
				g.Add(
					rdf.T(conceptIRI(i), edgeProperty(i), conceptIRI(i+1)),
					rdf.T(conceptIRI(i+1), core.GHasFeature, idFeature(i+1)),
				)
				f[nextID] = idFeature(i + 1)
			}
			if _, err := o.NewRelease(core.Release{Wrapper: spec, Subgraph: g, F: f}); err != nil {
				return nil, err
			}
			reg.Register(worstCaseWrapper(name, source, i, i+1 < concepts, rowsPerWrapper))
		}
	}

	// The query: project every concept's value feature and navigate the full
	// chain.
	var pi []rdf.IRI
	var pattern []rdf.Triple
	for i := 0; i < concepts; i++ {
		pi = append(pi, valueFeature(i))
		pattern = append(pattern, rdf.T(conceptIRI(i), core.GHasFeature, valueFeature(i)))
		if i+1 < concepts {
			pattern = append(pattern, rdf.T(conceptIRI(i), edgeProperty(i), conceptIRI(i+1)))
		}
	}

	return &WorstCase{
		Concepts:           concepts,
		WrappersPerConcept: wrappersPerConcept,
		Ontology:           o,
		Query:              rewriting.NewOMQ(pi, pattern...),
		Registry:           reg,
	}, nil
}

// worstCaseWrapper builds an in-memory wrapper so that the generated walks
// are also executable (n tuples, deterministic values).
func worstCaseWrapper(name, source string, concept int, hasNext bool, n int) wrapper.Wrapper {
	ids := []string{fmt.Sprintf("c%d_id", concept)}
	if hasNext {
		ids = append(ids, fmt.Sprintf("c%d_id", concept+1))
	}
	schema := relational.NewSchema(ids, []string{fmt.Sprintf("c%d_value", concept)})
	var rows []relational.Tuple
	for k := 0; k < n; k++ {
		t := relational.Tuple{
			fmt.Sprintf("c%d_id", concept):    k,
			fmt.Sprintf("c%d_value", concept): float64(concept) + float64(k)/10,
		}
		if hasNext {
			t[fmt.Sprintf("c%d_id", concept+1)] = k
		}
		rows = append(rows, t)
	}
	return wrapper.NewMemory(name, source, schema, rows)
}

// ExpectedWalks returns the number of covering and minimal walks the
// worst-case setting should produce: W^C.
func (w *WorstCase) ExpectedWalks() int {
	n := 1
	for i := 0; i < w.Concepts; i++ {
		n *= w.WrappersPerConcept
	}
	return n
}

// Rewrite runs the query rewriting algorithm over the worst-case setting and
// returns the number of generated walks.
func (w *WorstCase) Rewrite() (int, error) {
	r := rewriting.NewRewriter(w.Ontology)
	res, err := r.Rewrite(w.Query)
	if err != nil {
		return 0, err
	}
	return res.UCQ.Len(), nil
}
