package workload

import (
	"fmt"

	"bdi/internal/core"
	"bdi/internal/evolution"
	"bdi/internal/rdf"
)

// The Wordpress REST API "GET Posts" evolution study of §6.4 / Figure 11.
//
// The paper follows the endpoint from the (now deprecated) version 1 through
// the major version 2 release and 13 minor 2.x releases, registering one
// wrapper per release that provides all attributes of that release. The
// trace below reconstructs the structural changes from the public plugin
// changelog: v1 exposes the original post document, v2 renames and
// restructures most fields (a major release where few elements can be
// reused), and the minor releases add, delete or rename a handful of
// response parameters each.

// NSWordpress is the namespace of the Wordpress case-study vocabulary.
const NSWordpress = "http://www.essi.upc.edu/~snadal/BDIOntology/Wordpress/"

// WordpressRelease is one release of the GET Posts endpoint.
type WordpressRelease struct {
	// Version is the release label (e.g. "v1", "v2", "v2.3").
	Version string
	// Major marks major version releases (v1 and v2).
	Major bool
	// IDAttributes and Attributes are the response parameters of the release
	// (IDs first). Attribute names follow the JSON keys of the endpoint.
	IDAttributes []string
	Attributes   []string
}

// AllAttributes returns IDs followed by non-ID attributes.
func (r WordpressRelease) AllAttributes() []string {
	return append(append([]string(nil), r.IDAttributes...), r.Attributes...)
}

// WordpressPostsTrace returns the release trace of the GET Posts endpoint:
// version 1, version 2, and 13 minor 2.x releases.
func WordpressPostsTrace() []WordpressRelease {
	v1 := WordpressRelease{
		Version: "v1", Major: true,
		IDAttributes: []string{"ID"},
		Attributes: []string{
			"title", "status", "type", "author", "content", "parent", "link",
			"date", "modified", "format", "slug", "guid", "excerpt", "menu_order",
			"comment_status", "ping_status", "sticky", "date_tz", "date_gmt",
			"modified_tz", "modified_gmt", "terms", "post_meta", "featured_image",
		},
	}
	v2 := WordpressRelease{
		Version: "v2", Major: true,
		IDAttributes: []string{"id"},
		Attributes: []string{
			"date", "date_gmt", "guid", "modified", "modified_gmt", "slug",
			"status", "type", "link", "title", "content", "excerpt", "author",
			"featured_media", "comment_status", "ping_status", "sticky",
			"format", "meta", "categories", "tags", "template", "password",
		},
	}
	minor := func(version string, add, del []string, renames map[string]string) WordpressRelease {
		return WordpressRelease{Version: version, IDAttributes: []string{"id"},
			Attributes: applyMinor(v2.Attributes, add, del, renames)}
	}
	// Minor releases are cumulative: each applies its structural changes on
	// top of the previous release's attribute set.
	releases := []WordpressRelease{v1, v2}
	prevAttrs := v2.Attributes
	minorChanges := []struct {
		version string
		add     []string
		del     []string
		renames map[string]string
	}{
		{"v2.1", []string{"liveblog_likes"}, nil, nil},
		{"v2.2", nil, nil, map[string]string{"featured_media": "featured_image_id"}},
		{"v2.3", []string{"generated_slug", "permalink_template"}, nil, nil},
		{"v2.4", nil, []string{"liveblog_likes"}, nil},
		{"v2.5", []string{"revisions_count"}, nil, nil},
		{"v2.6", nil, nil, map[string]string{"featured_image_id": "featured_media"}},
		{"v2.7", []string{"theme_style"}, nil, nil},
		{"v2.8", nil, []string{"theme_style"}, nil},
		{"v2.9", []string{"block_version"}, nil, nil},
		{"v2.10", []string{"is_gutenberg"}, nil, nil},
		{"v2.11", nil, []string{"is_gutenberg"}, nil},
		{"v2.12", nil, nil, map[string]string{"password": "content_password"}},
		{"v2.13", []string{"site_id"}, nil, nil},
	}
	for _, mc := range minorChanges {
		r := minor(mc.version, mc.add, mc.del, mc.renames)
		r.Attributes = applyMinor(prevAttrs, mc.add, mc.del, mc.renames)
		prevAttrs = r.Attributes
		releases = append(releases, r)
	}
	return releases
}

func applyMinor(base, add, del []string, renames map[string]string) []string {
	out := make([]string, 0, len(base)+len(add))
	deleted := map[string]bool{}
	for _, d := range del {
		deleted[d] = true
	}
	for _, a := range base {
		if deleted[a] {
			continue
		}
		if renamed, ok := renames[a]; ok {
			out = append(out, renamed)
			continue
		}
		out = append(out, a)
	}
	out = append(out, add...)
	return out
}

// WordpressGrowthPoint records the Source-graph growth caused by one release
// (the series plotted in Figure 11).
type WordpressGrowthPoint struct {
	Version            string
	Major              bool
	SourceTriplesAdded int
	CumulativeTriples  int
	NewAttributes      int
	ReusedAttributes   int
	// AttributeChanges is the number of parameter-level changes w.r.t. the
	// previous release (0 for the initial release).
	AttributeChanges int
}

// WordpressGrowthOptions configures the growth simulation.
type WordpressGrowthOptions struct {
	// ReuseAttributes follows the paper (§3.2): attribute URIs are prefixed
	// with their source so that subsequent versions of the same source reuse
	// identical attributes. Disabling it registers every release's attributes
	// under a per-release source name, which is the ablation discussed in
	// DESIGN.md (growth becomes proportional to the full schema each time).
	ReuseAttributes bool
}

// WordpressConcept and feature IRIs used to host the endpoint in G.
var (
	WordpressPost      = rdf.IRI(NSWordpress + "Post")
	WordpressPostID    = rdf.IRI(NSWordpress + "postId")
	WordpressPostField = rdf.IRI(NSWordpress + "postField")
)

// SimulateWordpressGrowth registers one wrapper per release of the GET Posts
// endpoint into a fresh BDI ontology and measures how many triples each
// release adds to S, reproducing the analysis behind Figure 11.
func SimulateWordpressGrowth(releases []WordpressRelease, opts WordpressGrowthOptions) (*core.Ontology, []WordpressGrowthPoint, error) {
	o := core.NewOntology()
	// Minimal Global graph: a Post concept with an identifier and a generic
	// field feature; the growth experiment only measures S.
	if err := o.AddConcept(WordpressPost); err != nil {
		return nil, nil, err
	}
	if err := o.AddIdentifier(WordpressPost, WordpressPostID, rdf.XSDInteger); err != nil {
		return nil, nil, err
	}
	if err := o.AddFeatureTo(WordpressPost, WordpressPostField, rdf.XSDString); err != nil {
		return nil, nil, err
	}

	subgraph := rdf.NewGraph("")
	subgraph.Add(
		rdf.T(WordpressPost, core.GHasFeature, WordpressPostID),
		rdf.T(WordpressPost, core.GHasFeature, WordpressPostField),
	)

	baseline := o.TriplesInSource()
	var points []WordpressGrowthPoint
	var prev *WordpressRelease
	for i := range releases {
		rel := releases[i]
		source := "wordpress-posts"
		if !opts.ReuseAttributes {
			source = fmt.Sprintf("wordpress-posts-%s", rel.Version)
		}
		spec := core.WrapperSpec{
			Name:            "posts-" + rel.Version,
			Source:          source,
			IDAttributes:    rel.IDAttributes,
			NonIDAttributes: rel.Attributes,
		}
		f := map[string]rdf.IRI{}
		for _, id := range rel.IDAttributes {
			f[id] = WordpressPostID
		}
		// Non-ID attributes are modelled as providing the generic post field
		// feature; what matters for the growth analysis is the number of
		// S:Attribute and S:hasAttribute triples.
		if len(rel.Attributes) > 0 {
			f[rel.Attributes[0]] = WordpressPostField
		}
		res, err := o.NewRelease(core.Release{Wrapper: spec, Subgraph: subgraph.Clone(), F: f})
		if err != nil {
			return nil, nil, fmt.Errorf("workload: registering wordpress release %s: %w", rel.Version, err)
		}
		point := WordpressGrowthPoint{
			Version:            rel.Version,
			Major:              rel.Major,
			SourceTriplesAdded: res.SourceTriplesAdded,
			CumulativeTriples:  o.TriplesInSource() - baseline,
			NewAttributes:      len(res.NewAttributes),
			ReusedAttributes:   len(res.ReusedAttributes),
		}
		if prev != nil {
			point.AttributeChanges = len(evolution.SchemaDiff(prev.AllAttributes(), rel.AllAttributes(), nil))
		}
		points = append(points, point)
		prev = &releases[i]
	}
	return o, points, nil
}
