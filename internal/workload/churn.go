package workload

import (
	"fmt"

	"bdi/internal/core"
	"bdi/internal/rdf"
	"bdi/internal/relational"
	"bdi/internal/rewriting"
	"bdi/internal/wrapper"
)

// EvolutionChurn is the evolution-churn workload: the Figure 8 worst-case
// query interleaved with wrapper releases. Unrelated releases register new
// wrappers for side concepts the query never touches — under delta-driven
// invalidation the memoized rewriting must survive them — while related
// releases add a wrapper to the first chain concept, growing the walk count
// and forcing an (incremental) recompute.
type EvolutionChurn struct {
	*WorstCase
	// SideConcepts is the number of side concepts available for unrelated
	// releases.
	SideConcepts int

	unrelated int
	related   int
}

// sideConceptIRI returns the IRI of the i-th side concept (0-based).
func sideConceptIRI(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("%sSide%d", NSWorst, i)) }

// sideIDFeature returns the identifier feature of the i-th side concept.
func sideIDFeature(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("%sside%d_id", NSWorst, i)) }

// sideValueFeature returns the non-identifier feature of the i-th side concept.
func sideValueFeature(i int) rdf.IRI { return rdf.IRI(fmt.Sprintf("%sside%d_value", NSWorst, i)) }

// BuildEvolutionChurn builds the worst-case setting plus sideConcepts
// disconnected side concepts (each with an ID and a value feature, no
// wrappers yet). Side-concept releases are registered by
// RegisterUnrelatedRelease during the run.
func BuildEvolutionChurn(concepts, wrappersPerConcept, sideConcepts int) (*EvolutionChurn, error) {
	if sideConcepts < 1 {
		return nil, fmt.Errorf("workload: side concepts must be positive")
	}
	wc, err := BuildWorstCase(concepts, wrappersPerConcept)
	if err != nil {
		return nil, err
	}
	o := wc.Ontology
	for i := 0; i < sideConcepts; i++ {
		if err := o.AddConcept(sideConceptIRI(i)); err != nil {
			return nil, err
		}
		if err := o.AddIdentifier(sideConceptIRI(i), sideIDFeature(i), rdf.XSDInteger); err != nil {
			return nil, err
		}
		if err := o.AddFeatureTo(sideConceptIRI(i), sideValueFeature(i), rdf.XSDDouble); err != nil {
			return nil, err
		}
	}
	return &EvolutionChurn{WorstCase: wc, SideConcepts: sideConcepts}, nil
}

// RegisterUnrelatedRelease registers a new wrapper (from a fresh data
// source) for the next side concept, round-robin. Its delta touches only
// that side concept and its features — never the chain the worst-case
// query navigates.
func (ec *EvolutionChurn) RegisterUnrelatedRelease() (*core.ReleaseResult, error) {
	i := ec.unrelated % ec.SideConcepts
	ec.unrelated++
	name := fmt.Sprintf("w_side%d_%d", i, ec.unrelated)
	source := fmt.Sprintf("S_side%d_%d", i, ec.unrelated)
	idAttr := fmt.Sprintf("side%d_id", i)
	valueAttr := fmt.Sprintf("side%d_value", i)
	spec := core.WrapperSpec{
		Name:            name,
		Source:          source,
		IDAttributes:    []string{idAttr},
		NonIDAttributes: []string{valueAttr},
	}
	g := rdf.NewGraph("")
	g.Add(
		rdf.T(sideConceptIRI(i), core.GHasFeature, sideIDFeature(i)),
		rdf.T(sideConceptIRI(i), core.GHasFeature, sideValueFeature(i)),
	)
	f := map[string]rdf.IRI{idAttr: sideIDFeature(i), valueAttr: sideValueFeature(i)}
	res, err := ec.Ontology.NewRelease(core.Release{Wrapper: spec, Subgraph: g, F: f})
	if err != nil {
		return nil, err
	}
	schema := relational.NewSchema([]string{idAttr}, []string{valueAttr})
	rows := []relational.Tuple{{idAttr: 0, valueAttr: float64(i)}}
	ec.Registry.Register(wrapper.NewMemory(name, source, schema, rows))
	return res, nil
}

// RegisterRelatedRelease registers one more wrapper for the first chain
// concept (same shape as the builder's wrappers: the concept's ID and
// value plus, when the chain continues, the edge and the next concept's
// ID). Its delta intersects the worst-case query footprint, so memoized
// results for that query must be retired; the expected walk count becomes
// ExpectedWalks().
func (ec *EvolutionChurn) RegisterRelatedRelease() (*core.ReleaseResult, error) {
	ec.related++
	name := fmt.Sprintf("w_c0_rel%d", ec.related)
	source := fmt.Sprintf("S_c0_rel%d", ec.related)
	spec := core.WrapperSpec{
		Name:            name,
		Source:          source,
		IDAttributes:    []string{"c0_id"},
		NonIDAttributes: []string{"c0_value"},
	}
	g := rdf.NewGraph("")
	g.Add(
		rdf.T(conceptIRI(0), core.GHasFeature, idFeature(0)),
		rdf.T(conceptIRI(0), core.GHasFeature, valueFeature(0)),
	)
	f := map[string]rdf.IRI{"c0_id": idFeature(0), "c0_value": valueFeature(0)}
	if ec.Concepts > 1 {
		spec.IDAttributes = append(spec.IDAttributes, "c1_id")
		g.Add(
			rdf.T(conceptIRI(0), edgeProperty(0), conceptIRI(1)),
			rdf.T(conceptIRI(1), core.GHasFeature, idFeature(1)),
		)
		f["c1_id"] = idFeature(1)
	}
	res, err := ec.Ontology.NewRelease(core.Release{Wrapper: spec, Subgraph: g, F: f})
	if err != nil {
		return nil, err
	}
	ec.Registry.Register(worstCaseWrapper(name, source, 0, ec.Concepts > 1, 3))
	return res, nil
}

// ExpectedWalks returns the covering and minimal walk count of the
// worst-case query given the related releases registered so far:
// (W + related) * W^(C-1).
func (ec *EvolutionChurn) ExpectedWalks() int {
	n := ec.WrappersPerConcept + ec.related
	for i := 1; i < ec.Concepts; i++ {
		n *= ec.WrappersPerConcept
	}
	return n
}

// SideQuery returns an OMQ over one side concept (projecting its value
// feature). It is answerable once RegisterUnrelatedRelease has registered
// a wrapper for that side concept.
func (ec *EvolutionChurn) SideQuery(i int) *rewriting.OMQ {
	return rewriting.NewOMQ(
		[]rdf.IRI{sideValueFeature(i)},
		rdf.T(sideConceptIRI(i), core.GHasFeature, sideValueFeature(i)),
	)
}

// UnrelatedReleases returns how many unrelated releases were registered.
func (ec *EvolutionChurn) UnrelatedReleases() int { return ec.unrelated }

// RelatedReleases returns how many related releases were registered.
func (ec *EvolutionChurn) RelatedReleases() int { return ec.related }
