package workload

import (
	"testing"

	"bdi/internal/rewriting"
	"bdi/internal/wrapper"
)

func TestBuildEvolutionChurnStructure(t *testing.T) {
	ec, err := BuildEvolutionChurn(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ec.ExpectedWalks() != 8 {
		t.Errorf("expected walks = %d, want 8", ec.ExpectedWalks())
	}
	if walks, err := ec.Rewrite(); err != nil || walks != 8 {
		t.Fatalf("rewrite = %d walks, err %v", walks, err)
	}
	if _, err := BuildEvolutionChurn(3, 2, 0); err == nil {
		t.Error("zero side concepts must be rejected")
	}
}

func TestEvolutionChurnUnrelatedReleaseDeltaIsDisjoint(t *testing.T) {
	ec, err := BuildEvolutionChurn(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ec.RegisterUnrelatedRelease()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta == nil {
		t.Fatal("no delta")
	}
	for i := 0; i < ec.Concepts; i++ {
		if res.Delta.Touches(conceptIRI(i)) || res.Delta.Touches(valueFeature(i)) {
			t.Fatalf("unrelated delta touches chain concept %d: %v", i, res.Delta)
		}
	}
	if !res.Delta.Touches(sideConceptIRI(0)) {
		t.Errorf("unrelated delta misses its side concept: %v", res.Delta)
	}
	// The worst-case walk set is unchanged.
	if walks, err := ec.Rewrite(); err != nil || walks != 8 {
		t.Fatalf("post-unrelated rewrite = %d walks, err %v", walks, err)
	}
	// The side query is now answerable with exactly the new wrapper.
	r := rewriting.NewRewriter(ec.Ontology)
	side, err := r.Rewrite(ec.SideQuery(0))
	if err != nil {
		t.Fatal(err)
	}
	if side.UCQ.Len() != 1 {
		t.Errorf("side query walks = %d, want 1", side.UCQ.Len())
	}
}

func TestEvolutionChurnRelatedReleaseGrowsWalks(t *testing.T) {
	ec, err := BuildEvolutionChurn(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ec.RegisterRelatedRelease()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delta.Touches(conceptIRI(0)) {
		t.Errorf("related delta misses concept 0: %v", res.Delta)
	}
	if ec.ExpectedWalks() != 12 {
		t.Errorf("expected walks after one related release = %d, want 12", ec.ExpectedWalks())
	}
	if walks, err := ec.Rewrite(); err != nil || walks != 12 {
		t.Fatalf("rewrite = %d walks, err %v", walks, err)
	}
	// The new walks are executable like the builder's.
	r := rewriting.NewRewriter(ec.Ontology)
	resw, err := r.Rewrite(ec.Query)
	if err != nil {
		t.Fatal(err)
	}
	answer, err := r.ExecuteResult(resw, wrapper.NewQualifiedResolver(ec.Registry))
	if err != nil {
		t.Fatal(err)
	}
	if answer.Cardinality() == 0 {
		t.Error("empty answer after related release")
	}
}
