package workload

import (
	"fmt"
	"math/rand"

	"bdi/internal/relational"
	"bdi/internal/wrapper"
)

// SupersedeTable1Registry returns the wrapper registry loaded with exactly
// the data of Table 1 of the paper (w1, w2, w3) plus, optionally, the evolved
// wrapper w4.
func SupersedeTable1Registry(withEvolution bool) *wrapper.Registry {
	reg := wrapper.NewRegistry()
	reg.Register(wrapper.NewMemory("w1", "D1",
		relational.NewSchema([]string{"VoDmonitorId"}, []string{"lagRatio"}),
		[]relational.Tuple{
			{"VoDmonitorId": 12, "lagRatio": 0.75},
			{"VoDmonitorId": 12, "lagRatio": 0.90},
			{"VoDmonitorId": 18, "lagRatio": 0.1},
		}))
	reg.Register(wrapper.NewMemory("w2", "D2",
		relational.NewSchema([]string{"FGId"}, []string{"tweet"}),
		[]relational.Tuple{
			{"FGId": 77, "tweet": "I continuously see the loading symbol"},
			{"FGId": 45, "tweet": "Your video player is great!"},
		}))
	reg.Register(wrapper.NewMemory("w3", "D3",
		relational.NewSchema([]string{"TargetApp", "MonitorId", "FeedbackId"}, nil),
		[]relational.Tuple{
			{"TargetApp": 1, "MonitorId": 12, "FeedbackId": 77},
			{"TargetApp": 2, "MonitorId": 18, "FeedbackId": 45},
		}))
	if withEvolution {
		reg.Register(wrapper.NewMemory("w4", "D1",
			relational.NewSchema([]string{"VoDmonitorId"}, []string{"bufferingRatio"}),
			[]relational.Tuple{
				{"VoDmonitorId": 18, "bufferingRatio": 0.35},
			}))
	}
	return reg
}

// SupersedeScaledRegistry returns a registry with the SUPERSEDE schema but
// synthetically scaled data: monitors applications and feedback-gathering
// tools for `apps` applications with `eventsPerMonitor` VoD events each. The
// generator is deterministic for a given seed.
func SupersedeScaledRegistry(apps, eventsPerMonitor int, seed int64, withEvolution bool) *wrapper.Registry {
	rng := rand.New(rand.NewSource(seed))
	reg := wrapper.NewRegistry()

	var w1Rows, w4Rows, w2Rows, w3Rows []relational.Tuple
	for app := 1; app <= apps; app++ {
		monitorID := 100 + app
		fgID := 500 + app
		w3Rows = append(w3Rows, relational.Tuple{"TargetApp": app, "MonitorId": monitorID, "FeedbackId": fgID})
		w2Rows = append(w2Rows, relational.Tuple{"FGId": fgID, "tweet": fmt.Sprintf("feedback about app %d", app)})
		for e := 0; e < eventsPerMonitor; e++ {
			wait := rng.Float64() * 10
			watch := 1 + rng.Float64()*20
			if app%2 == 0 && withEvolution {
				w4Rows = append(w4Rows, relational.Tuple{"VoDmonitorId": monitorID, "bufferingRatio": wait / watch})
			} else {
				w1Rows = append(w1Rows, relational.Tuple{"VoDmonitorId": monitorID, "lagRatio": wait / watch})
			}
		}
	}
	reg.Register(wrapper.NewMemory("w1", "D1",
		relational.NewSchema([]string{"VoDmonitorId"}, []string{"lagRatio"}), w1Rows))
	reg.Register(wrapper.NewMemory("w2", "D2",
		relational.NewSchema([]string{"FGId"}, []string{"tweet"}), w2Rows))
	reg.Register(wrapper.NewMemory("w3", "D3",
		relational.NewSchema([]string{"TargetApp", "MonitorId", "FeedbackId"}, nil), w3Rows))
	if withEvolution {
		reg.Register(wrapper.NewMemory("w4", "D1",
			relational.NewSchema([]string{"VoDmonitorId"}, []string{"bufferingRatio"}), w4Rows))
	}
	return reg
}
