package workload

import (
	"testing"

	"bdi/internal/core"
	"bdi/internal/rewriting"
	"bdi/internal/wrapper"
)

func TestBuildWorstCaseStructure(t *testing.T) {
	wc, err := BuildWorstCase(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(wc.Ontology.Concepts()) != 3 {
		t.Errorf("concepts = %d", len(wc.Ontology.Concepts()))
	}
	if len(wc.Ontology.Wrappers()) != 6 {
		t.Errorf("wrappers = %d", len(wc.Ontology.Wrappers()))
	}
	if wc.Registry.Len() != 6 {
		t.Errorf("registry = %d", wc.Registry.Len())
	}
	if wc.ExpectedWalks() != 8 {
		t.Errorf("expected walks = %d", wc.ExpectedWalks())
	}
}

func TestWorstCaseRewriteProducesWToTheC(t *testing.T) {
	cases := []struct{ c, w int }{
		{2, 1}, {2, 3}, {3, 2}, {3, 3}, {5, 2},
	}
	for _, cs := range cases {
		wc, err := BuildWorstCase(cs.c, cs.w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wc.Rewrite()
		if err != nil {
			t.Fatalf("C=%d W=%d: %v", cs.c, cs.w, err)
		}
		if got != wc.ExpectedWalks() {
			t.Errorf("C=%d W=%d: walks = %d, want %d", cs.c, cs.w, got, wc.ExpectedWalks())
		}
	}
}

func TestWorstCaseWalksAreExecutable(t *testing.T) {
	wc, err := BuildWorstCase(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rewriting.NewRewriter(wc.Ontology)
	answer, res, err := r.Answer(wc.Query, wrapper.NewQualifiedResolver(wc.Registry))
	if err != nil {
		t.Fatal(err)
	}
	if res.UCQ.Len() != 8 {
		t.Errorf("walks = %d", res.UCQ.Len())
	}
	// Each wrapper has 3 aligned tuples; every walk yields the same 3 rows,
	// so the distinct union has 3 tuples with one column per value feature.
	if answer.Cardinality() != 3 {
		t.Errorf("answer cardinality = %d\n%s", answer.Cardinality(), answer)
	}
	if len(answer.Schema.Attributes) != 3 {
		t.Errorf("answer schema = %v", answer.Schema)
	}
}

func TestBuildWorstCaseRejectsBadArguments(t *testing.T) {
	if _, err := BuildWorstCase(0, 3); err == nil {
		t.Error("zero concepts must fail")
	}
	if _, err := BuildWorstCase(3, 0); err == nil {
		t.Error("zero wrappers must fail")
	}
}

func TestWordpressTraceShape(t *testing.T) {
	releases := WordpressPostsTrace()
	if len(releases) != 15 {
		t.Fatalf("releases = %d, want 15 (v1, v2 and 13 minor)", len(releases))
	}
	if !releases[0].Major || !releases[1].Major {
		t.Error("v1 and v2 must be major releases")
	}
	for _, r := range releases[2:] {
		if r.Major {
			t.Errorf("%s should be a minor release", r.Version)
		}
	}
	// v1 uses "ID", v2 onwards use "id".
	if releases[0].IDAttributes[0] != "ID" || releases[1].IDAttributes[0] != "id" {
		t.Error("identifier attribute rename between v1 and v2 missing")
	}
	// Minor releases change only a handful of attributes each.
	for i := 2; i < len(releases); i++ {
		diff := len(releases[i].AllAttributes()) - len(releases[i-1].AllAttributes())
		if diff > 2 || diff < -2 {
			t.Errorf("%s changes too many attributes (%d)", releases[i].Version, diff)
		}
	}
}

func TestSimulateWordpressGrowth(t *testing.T) {
	releases := WordpressPostsTrace()
	o, points, err := SimulateWordpressGrowth(releases, WordpressGrowthOptions{ReuseAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(releases) {
		t.Fatalf("points = %d", len(points))
	}
	// v1 carries the big initial batch; v2 is a major bump; minor releases
	// add a small, steady number of triples (Figure 11's shape).
	v1, v2 := points[0], points[1]
	if v1.SourceTriplesAdded <= v2.SourceTriplesAdded {
		t.Errorf("v1 (%d) should add more triples than v2 (%d)? (v1 registers the full schema)",
			v1.SourceTriplesAdded, v2.SourceTriplesAdded)
	}
	maxMinor := 0
	for _, p := range points[2:] {
		if p.SourceTriplesAdded > maxMinor {
			maxMinor = p.SourceTriplesAdded
		}
		if p.SourceTriplesAdded <= 0 {
			t.Errorf("%s added no triples", p.Version)
		}
	}
	if maxMinor >= v2.SourceTriplesAdded {
		t.Errorf("minor releases (max %d) should add fewer triples than the major v2 (%d)", maxMinor, v2.SourceTriplesAdded)
	}
	// Cumulative growth is monotone and matches the ontology state.
	for i := 1; i < len(points); i++ {
		if points[i].CumulativeTriples <= points[i-1].CumulativeTriples {
			t.Error("cumulative growth must be strictly increasing")
		}
	}
	if points[len(points)-1].CumulativeTriples != o.TriplesInSource()-core.NewOntology().TriplesInSource() {
		t.Error("cumulative total inconsistent with the ontology")
	}
	// Attribute reuse: minor releases reuse most attributes.
	if points[3].ReusedAttributes == 0 {
		t.Error("minor releases should reuse attributes of the same source")
	}
}

func TestSimulateWordpressGrowthWithoutReuse(t *testing.T) {
	releases := WordpressPostsTrace()
	_, reuse, err := SimulateWordpressGrowth(releases, WordpressGrowthOptions{ReuseAttributes: true})
	if err != nil {
		t.Fatal(err)
	}
	_, noReuse, err := SimulateWordpressGrowth(releases, WordpressGrowthOptions{ReuseAttributes: false})
	if err != nil {
		t.Fatal(err)
	}
	totalReuse := reuse[len(reuse)-1].CumulativeTriples
	totalNoReuse := noReuse[len(noReuse)-1].CumulativeTriples
	if totalNoReuse <= totalReuse {
		t.Errorf("disabling attribute reuse must grow S faster: %d vs %d", totalNoReuse, totalReuse)
	}
}

func TestSupersedeTable1Registry(t *testing.T) {
	reg := SupersedeTable1Registry(false)
	if reg.Len() != 3 {
		t.Errorf("registry = %d", reg.Len())
	}
	rel, err := reg.Fetch("w1")
	if err != nil || rel.Cardinality() != 3 {
		t.Errorf("w1 = %v, %v", rel, err)
	}
	regEvo := SupersedeTable1Registry(true)
	if regEvo.Len() != 4 {
		t.Errorf("registry with evolution = %d", regEvo.Len())
	}
}

func TestSupersedeScaledRegistryDeterministic(t *testing.T) {
	a := SupersedeScaledRegistry(10, 5, 42, true)
	b := SupersedeScaledRegistry(10, 5, 42, true)
	relA, _ := a.Fetch("w1")
	relB, _ := b.Fetch("w1")
	if relA.Cardinality() != relB.Cardinality() {
		t.Error("same seed must produce the same data")
	}
	if relA.Cardinality() == 0 {
		t.Error("scaled registry should contain VoD events")
	}
	w3, _ := a.Fetch("w3")
	if w3.Cardinality() != 10 {
		t.Errorf("w3 cardinality = %d, want 10", w3.Cardinality())
	}
	// Evolution splits the events across w1 (odd apps) and w4 (even apps).
	w4, _ := a.Fetch("w4")
	if w4.Cardinality() == 0 {
		t.Error("w4 should hold the even applications' events")
	}
}
